//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Framework traits for the interval domain. Unlike the kill/gen clients,
/// bottom-up relations here carry *transformers*: a summary row is
/// "entry counter at key F, passed through transformer T, lands at key
/// To", and an underflow report row is conditional on the entry interval
/// ("if T(I) may be <= 0, Under(p, n) fires"), so rtrans and composeCall
/// genuinely compose functions rather than chase edges. This is the
/// stress case for the framework's (A, B, C1-C3) contract: C2 holds
/// because transformer composition is exact (compose() is canonical), and
/// C3 because pruned rows record their whole domain key in Sigma.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_CLIENTS_INTERVAL_INTERVALANALYSIS_H
#define SWIFT_CLIENTS_INTERVAL_INTERVALANALYSIS_H

#include "clients/Binding.h"
#include "clients/interval/IntervalDomain.h"

#include <algorithm>
#include <optional>
#include <set>

namespace swift {
namespace interval {

/// A bottom-up relation of the interval family.
struct IvRel {
  enum class Kind : uint8_t {
    IdExcept,  ///< {(Num(k,I), Num(k,I)) | k not in Excl} + Under rows.
    Map,       ///< {(Num(From,I), Num(To, T(I)))}.
    Birth,     ///< {(Lambda, Num(To, BI))}.
    Rep,       ///< {(Num(From,I), Under(p,n)) | underflows(T(I))}.
    BirthRep,  ///< {(Lambda, Under(p,n))}.
  };

  Kind K = Kind::IdExcept;
  std::vector<IvKey> Excl; ///< Sorted, unique (IdExcept).
  IvKey From, To;          ///< Map / Rep (From), Map / Birth (To).
  Transformer T;           ///< Map / Rep.
  Interval BI;             ///< Birth.
  ProcId P = InvalidProc;  ///< Rep / BirthRep.
  NodeId N = InvalidNode;  ///< Rep / BirthRep.

  static IvRel identity() { return IvRel(); }
  static IvRel identityExcept(std::vector<IvKey> X) {
    IvRel R;
    std::sort(X.begin(), X.end());
    X.erase(std::unique(X.begin(), X.end()), X.end());
    R.Excl = std::move(X);
    return R;
  }
  static IvRel map(IvKey From, IvKey To, Transformer T) {
    IvRel R;
    R.K = Kind::Map;
    R.From = From;
    R.To = To;
    R.T = T;
    return R;
  }
  static IvRel birth(IvKey To, Interval BI) {
    IvRel R;
    R.K = Kind::Birth;
    R.To = To;
    R.BI = BI;
    return R;
  }
  static IvRel rep(IvKey From, Transformer T, ProcId P, NodeId N) {
    IvRel R;
    R.K = Kind::Rep;
    R.From = From;
    R.T = T;
    R.P = P;
    R.N = N;
    return R;
  }
  static IvRel birthRep(ProcId P, NodeId N) {
    IvRel R;
    R.K = Kind::BirthRep;
    R.P = P;
    R.N = N;
    return R;
  }

  bool excludes(IvKey K2) const {
    return std::binary_search(Excl.begin(), Excl.end(), K2);
  }

  friend bool operator==(const IvRel &A, const IvRel &B) {
    return A.K == B.K && A.Excl == B.Excl && A.From == B.From &&
           A.To == B.To && A.T == B.T && A.BI == B.BI && A.P == B.P &&
           A.N == B.N;
  }
  friend bool operator<(const IvRel &A, const IvRel &B) {
    if (A.K != B.K)
      return A.K < B.K;
    if (A.Excl != B.Excl)
      return A.Excl < B.Excl;
    if (A.From != B.From)
      return A.From < B.From;
    if (A.To != B.To)
      return A.To < B.To;
    if (!(A.T == B.T))
      return A.T < B.T;
    if (A.BI != B.BI)
      return A.BI < B.BI;
    if (A.P != B.P)
      return A.P < B.P;
    return A.N < B.N;
  }
};

/// Ignored inputs: key-granular (a pruned row's domain is every interval
/// at its key, so Sigma records whole keys).
class IvIgnore {
public:
  bool containsLambda() const { return Lambda || All; }
  bool containsKey(IvKey K) const { return All || Keys.count(K) != 0; }
  bool containsFact(const IvFact &F) const {
    if (All)
      return true;
    switch (F.K) {
    case IvFact::Kind::Lambda:
      return Lambda;
    case IvFact::Kind::Num:
      return Keys.count(F.Key) != 0;
    case IvFact::Kind::Under:
      return false; // Reports never enter a procedure.
    }
    return false;
  }
  void makeAll() {
    All = true;
    Lambda = true;
    Keys.clear();
  }
  bool contains(const IvContext &Ctx, const IvFact &F) const {
    (void)Ctx;
    return containsFact(F);
  }
  bool addLambda() {
    bool Grew = !Lambda;
    Lambda = true;
    return Grew;
  }
  bool addKey(IvKey K) {
    if (All)
      return false;
    return Keys.insert(K).second;
  }
  bool add(const IvFact &F) {
    if (F.isLambda())
      return addLambda();
    if (F.K == IvFact::Kind::Num)
      return addKey(F.Key);
    return false; // Under rows are never ignored inputs.
  }
  bool unionWith(const IvIgnore &Other) {
    if (All)
      return false;
    if (Other.All) {
      makeAll();
      return true;
    }
    bool Grew = false;
    if (Other.Lambda)
      Grew |= addLambda();
    for (IvKey K : Other.Keys)
      Grew |= Keys.insert(K).second;
    return Grew;
  }
  friend bool operator==(const IvIgnore &A, const IvIgnore &B) {
    return A.All == B.All && A.Lambda == B.Lambda && A.Keys == B.Keys;
  }
  friend bool operator!=(const IvIgnore &A, const IvIgnore &B) {
    return !(A == B);
  }
  const std::set<IvKey> &keys() const { return Keys; }
  size_t size() const { return Keys.size() + (Lambda ? 1 : 0); }

private:
  bool All = false;
  bool Lambda = false;
  std::set<IvKey> Keys;
};

struct IvBinding {
  IvBinding(const IvContext &Ctx, const Command &Cmd)
      : B(Ctx.program(), Cmd) {}
  clients::Binding B;
};

struct IvAnalysis {
  using Context = IvContext;
  using State = IvFact;
  using Rel = IvRel;
  using Ignore = IvIgnore;
  using Binding = IvBinding;

  // -- Top-down analysis --
  static State lambda() { return IvFact::lambda(); }
  static bool isLambda(const State &S) { return S.isLambda(); }

  static std::vector<State> transfer(const Context &Ctx, ProcId P,
                                     const Command &Cmd, const State &S) {
    if (S.isLambda()) {
      std::vector<State> Out{S};
      if (Cmd.Kind == CmdKind::Alloc)
        Out.push_back(IvFact::num(IvKey::var(Cmd.Dst), Interval::point(0)));
      return Out;
    }
    if (S.K == IvFact::Kind::Under)
      return {S}; // Absorbing observation.

    const IvKey K = S.Key;
    const Interval I = S.I;
    if (K.IsField) {
      if (Cmd.Kind == CmdKind::Load && Cmd.Field == K.Sym)
        return {S, IvFact::num(IvKey::var(Cmd.Dst), I)};
      return {S};
    }
    Symbol V = K.Sym;
    switch (Cmd.Kind) {
    case CmdKind::Nop:
      return {S};
    case CmdKind::Alloc:
    case CmdKind::AssignNull:
      return Cmd.Dst == V ? std::vector<State>{} : std::vector<State>{S};
    case CmdKind::Copy:
      if (Cmd.Src == V) {
        if (Cmd.Dst == V)
          return {S};
        return {S, IvFact::num(IvKey::var(Cmd.Dst), I)};
      }
      return Cmd.Dst == V ? std::vector<State>{} : std::vector<State>{S};
    case CmdKind::Load:
      return Cmd.Dst == V ? std::vector<State>{} : std::vector<State>{S};
    case CmdKind::Store:
      if (Cmd.Src == V)
        return {S, IvFact::num(IvKey::field(Cmd.Field), I)};
      return {S};
    case CmdKind::TsCall:
      if (Cmd.Src != V)
        return {S};
      switch (Ctx.methodOp(Cmd.Method)) {
      case MethodOp::Inc:
        return {IvFact::num(K, Transformer::inc().apply(I))};
      case MethodOp::Dec: {
        std::vector<State> Out{IvFact::num(K, Transformer::dec().apply(I))};
        if (IvContext::underflows(I))
          Out.push_back(IvFact::under(P, Cmd.Self));
        return Out;
      }
      case MethodOp::Reset:
        return {IvFact::num(K, Interval::point(0))};
      case MethodOp::Nop:
        return {S};
      }
      return {S};
    case CmdKind::Call:
      break;
    }
    assert(false && "calls are handled by the solver");
    return {S};
  }

  static Binding makeBinding(const Context &Ctx, ProcId P,
                             const Command &Cmd) {
    (void)P;
    return IvBinding(Ctx, Cmd);
  }

  static std::vector<State> enter(const Binding &B, const State &S) {
    if (S.isLambda())
      return {S};
    if (S.K == IvFact::Kind::Under)
      return {}; // Observations stay in the frame (callLocal).
    if (S.Key.IsField)
      return {S}; // The field store is global.
    std::vector<State> Out;
    for (Symbol Formal : B.B.formalsOf(S.Key.Sym))
      Out.push_back(IvFact::num(IvKey::var(Formal), S.I));
    return Out;
  }

  static std::vector<State> callLocal(const Binding &B, const State &S) {
    if (S.isLambda())
      return {}; // Lambda travels through the callee.
    if (S.K == IvFact::Kind::Under)
      return {S};
    if (S.Key.IsField)
      return {}; // Travels through the callee.
    if (S.Key.Sym == B.B.resultVar() && B.B.resultVar().isValid())
      return {}; // The result variable is rebound by the call.
    return {S};
  }

  static std::vector<State> combine(const Binding &B, const State &Frame,
                                    const State &Exit) {
    (void)Frame; // Atomic may-facts need no frame merge.
    return combineFresh(B, Exit);
  }

  static std::vector<State> combineFresh(const Binding &B,
                                         const State &Exit) {
    if (Exit.isLambda())
      return {Exit};
    if (Exit.K == IvFact::Kind::Under)
      return {Exit}; // Reports propagate to callers.
    if (Exit.Key.IsField)
      return {Exit};
    // Counters pass by value: only $ret maps back (no formal/actual
    // mapping — a callee mutating a formal never affects the caller).
    if (Exit.Key.Sym == B.B.retVar() && B.B.resultVar().isValid())
      return {IvFact::num(IvKey::var(B.B.resultVar()), Exit.I)};
    return {};
  }

  // -- Bottom-up analysis --
  struct SummaryView {
    const std::vector<Rel> *Rels = nullptr;
    const Ignore *Sigma = nullptr;
  };

  static Rel identityRel(const Context &Ctx) {
    (void)Ctx;
    return IvRel::identity();
  }

  /// The keys whose identity row changes under \p Cmd.
  static void affectedKeys(const Context &Ctx, const Command &Cmd,
                           std::vector<IvKey> &Out) {
    switch (Cmd.Kind) {
    case CmdKind::Nop:
      return;
    case CmdKind::Alloc:
    case CmdKind::AssignNull:
      Out.push_back(IvKey::var(Cmd.Dst));
      return;
    case CmdKind::Copy:
      if (Cmd.Dst == Cmd.Src)
        return;
      Out.push_back(IvKey::var(Cmd.Dst));
      Out.push_back(IvKey::var(Cmd.Src));
      return;
    case CmdKind::Load:
      Out.push_back(IvKey::var(Cmd.Dst));
      Out.push_back(IvKey::field(Cmd.Field));
      return;
    case CmdKind::Store:
      Out.push_back(IvKey::var(Cmd.Src));
      return;
    case CmdKind::TsCall:
      if (Ctx.methodOp(Cmd.Method) != MethodOp::Nop)
        Out.push_back(IvKey::var(Cmd.Src));
      return;
    case CmdKind::Call:
      break;
    }
    assert(false && "calls have no kill/gen footprint");
  }

  /// Extends one (From -> To via T) row across \p Cmd; shared by the Map
  /// and identity-peel paths of rtrans.
  static void stepRow(const Context &Ctx, ProcId P, const Command &Cmd,
                      IvKey From, IvKey To, const Transformer &T,
                      std::vector<Rel> &Out) {
    switch (Cmd.Kind) {
    case CmdKind::Nop:
      Out.push_back(IvRel::map(From, To, T));
      return;
    case CmdKind::Alloc:
    case CmdKind::AssignNull:
      if (!(!To.IsField && Cmd.Dst == To.Sym))
        Out.push_back(IvRel::map(From, To, T));
      return;
    case CmdKind::Copy:
      if (!To.IsField && Cmd.Src == To.Sym) {
        Out.push_back(IvRel::map(From, To, T));
        if (Cmd.Dst != To.Sym)
          Out.push_back(IvRel::map(From, IvKey::var(Cmd.Dst), T));
        return;
      }
      if (!(!To.IsField && Cmd.Dst == To.Sym))
        Out.push_back(IvRel::map(From, To, T));
      return;
    case CmdKind::Load:
      if (To.IsField && Cmd.Field == To.Sym) {
        Out.push_back(IvRel::map(From, To, T));
        Out.push_back(IvRel::map(From, IvKey::var(Cmd.Dst), T));
        return;
      }
      if (!(!To.IsField && Cmd.Dst == To.Sym))
        Out.push_back(IvRel::map(From, To, T));
      return;
    case CmdKind::Store:
      Out.push_back(IvRel::map(From, To, T));
      if (!To.IsField && Cmd.Src == To.Sym)
        Out.push_back(IvRel::map(From, IvKey::field(Cmd.Field), T));
      return;
    case CmdKind::TsCall: {
      if (To.IsField || Cmd.Src != To.Sym) {
        Out.push_back(IvRel::map(From, To, T));
        return;
      }
      switch (Ctx.methodOp(Cmd.Method)) {
      case MethodOp::Inc:
        Out.push_back(IvRel::map(From, To, compose(Transformer::inc(), T)));
        return;
      case MethodOp::Dec:
        Out.push_back(IvRel::map(From, To, compose(Transformer::dec(), T)));
        Out.push_back(IvRel::rep(From, T, P, Cmd.Self));
        return;
      case MethodOp::Reset:
        Out.push_back(IvRel::map(From, To, Transformer::constant(0)));
        return;
      case MethodOp::Nop:
        Out.push_back(IvRel::map(From, To, T));
        return;
      }
      return;
    }
    case CmdKind::Call:
      break;
    }
    assert(false && "calls are handled by the solver");
  }

  static std::vector<Rel> rtrans(const Context &Ctx, ProcId P,
                                 const Command &Cmd, const Rel &R) {
    std::vector<Rel> Out;
    switch (R.K) {
    case IvRel::Kind::Rep:
    case IvRel::Kind::BirthRep:
      Out.push_back(R); // Absorbing.
      return Out;

    case IvRel::Kind::Map:
      stepRow(Ctx, P, Cmd, R.From, R.To, R.T, Out);
      return Out;

    case IvRel::Kind::Birth: {
      // Same shape as stepRow, but the carried value is concrete.
      std::vector<Rel> Rows;
      stepRow(Ctx, P, Cmd, R.To /*dummy From*/, R.To,
              Transformer::identity(), Rows);
      for (const Rel &Row : Rows) {
        if (Row.K == IvRel::Kind::Map) {
          Out.push_back(IvRel::birth(Row.To, Row.T.apply(R.BI)));
        } else {
          assert(Row.K == IvRel::Kind::Rep);
          if (IvContext::underflows(Row.T.apply(R.BI)))
            Out.push_back(IvRel::birthRep(Row.P, Row.N));
        }
      }
      return Out;
    }

    case IvRel::Kind::IdExcept: {
      std::vector<IvKey> Affected;
      affectedKeys(Ctx, Cmd, Affected);
      std::vector<IvKey> NewExcl = R.Excl;
      for (IvKey K : Affected) {
        if (R.excludes(K))
          continue;
        NewExcl.push_back(K);
        // Peel the identity row at K into explicit rows, minus the
        // killed cases (births are Lambda's business).
        std::vector<Rel> Rows;
        stepRow(Ctx, P, Cmd, K, K, Transformer::identity(), Rows);
        for (const Rel &Row : Rows) {
          // Kills drop the row entirely: stepRow already omits them.
          Out.push_back(Row);
        }
      }
      Out.push_back(IvRel::identityExcept(std::move(NewExcl)));
      return Out;
    }
    }
    return Out;
  }

  static std::vector<Rel> lambdaEmits(const Context &Ctx,
                                      const Command &Cmd) {
    (void)Ctx;
    std::vector<Rel> Out;
    if (Cmd.Kind == CmdKind::Alloc)
      Out.push_back(
          IvRel::birth(IvKey::var(Cmd.Dst), Interval::point(0)));
    return Out;
  }

  /// Maps a callee-exit key back into the caller; invalid Symbol means
  /// "does not map back".
  static std::optional<IvKey> combineKey(const Binding &B, IvKey Exit) {
    if (Exit.IsField)
      return Exit;
    if (Exit.Sym == B.B.retVar() && B.B.resultVar().isValid())
      return IvKey::var(B.B.resultVar());
    return std::nullopt; // Value semantics: formals do not map back.
  }

  /// Composes one caller row reaching the call with output key \p Mid and
  /// accumulated transformer \p T (identity for peeled identity rows).
  /// Emits Map/Rep rows with domain key \p From.
  static void composeKeyThroughCall(const Context &Ctx, const Binding &B,
                                    IvKey From, IvKey Mid,
                                    const Transformer &T,
                                    const SummaryView &Callee,
                                    std::vector<Rel> &Out,
                                    Ignore &SigmaOut) {
    (void)Ctx;
    // Caller-side survival (the analogue of callLocal).
    if (!Mid.IsField &&
        !(Mid.Sym == B.B.resultVar() && B.B.resultVar().isValid()))
      Out.push_back(IvRel::map(From, Mid, T));

    // Entry into the callee: fields as themselves, actuals as formals.
    std::vector<IvKey> Entered;
    if (Mid.IsField) {
      Entered.push_back(Mid);
    } else {
      for (Symbol Formal : B.B.formalsOf(Mid.Sym))
        Entered.push_back(IvKey::var(Formal));
    }

    for (IvKey E : Entered) {
      if (Callee.Sigma->containsKey(E)) {
        SigmaOut.addKey(From);
        continue;
      }
      for (const Rel &CR : *Callee.Rels) {
        switch (CR.K) {
        case IvRel::Kind::IdExcept:
          if (!CR.excludes(E))
            if (auto Back = combineKey(B, E))
              Out.push_back(IvRel::map(From, *Back, T));
          break;
        case IvRel::Kind::Map:
          if (CR.From == E)
            if (auto Back = combineKey(B, CR.To))
              Out.push_back(IvRel::map(From, *Back, compose(CR.T, T)));
          break;
        case IvRel::Kind::Rep:
          if (CR.From == E)
            Out.push_back(
                IvRel::rep(From, compose(CR.T, T), CR.P, CR.N));
          break;
        case IvRel::Kind::Birth:
        case IvRel::Kind::BirthRep:
          break; // Lambda rows; composeCallLambda's business.
        }
      }
    }
  }

  static void composeCall(const Context &Ctx, const Binding &B,
                          const Rel &R, const SummaryView &Callee,
                          std::vector<Rel> &Out, Ignore &SigmaOut) {
    switch (R.K) {
    case IvRel::Kind::Rep:
    case IvRel::Kind::BirthRep:
      Out.push_back(R); // Reports survive in the caller frame.
      return;

    case IvRel::Kind::Map:
      composeKeyThroughCall(Ctx, B, R.From, R.To, R.T, Callee, Out,
                            SigmaOut);
      return;

    case IvRel::Kind::Birth: {
      // Same composition, with the concrete interval threaded through.
      std::vector<Rel> Rows;
      IvIgnore Sig;
      composeKeyThroughCall(Ctx, B, R.To /*dummy*/, R.To,
                            Transformer::identity(), Callee, Rows, Sig);
      if (Sig.size() != 0)
        SigmaOut.addLambda();
      for (const Rel &Row : Rows) {
        if (Row.K == IvRel::Kind::Map) {
          Out.push_back(IvRel::birth(Row.To, Row.T.apply(R.BI)));
        } else {
          assert(Row.K == IvRel::Kind::Rep);
          if (IvContext::underflows(Row.T.apply(R.BI)))
            Out.push_back(IvRel::birthRep(Row.P, Row.N));
        }
      }
      return;
    }

    case IvRel::Kind::IdExcept: {
      // Footprint: the result variable, every actual, and every field key.
      // Actuals pass by value, so a peeled actual re-emits its own
      // identity row (composeKeyThroughCall's caller-survival row) — but
      // it must still enter the callee as its formals, because the callee
      // can funnel the actual's value back out through a field store or
      // $ret, and those rows have a formal (not a field) as their domain
      // key.
      std::vector<IvKey> Footprint;
      if (B.B.resultVar().isValid())
        Footprint.push_back(IvKey::var(B.B.resultVar()));
      for (const auto &[Actual, Formals] : B.B.bindings()) {
        (void)Formals;
        Footprint.push_back(IvKey::var(Actual));
      }
      for (Symbol F : Ctx.allFields())
        Footprint.push_back(IvKey::field(F));
      std::sort(Footprint.begin(), Footprint.end());
      Footprint.erase(std::unique(Footprint.begin(), Footprint.end()),
                      Footprint.end());

      std::vector<IvKey> NewExcl = R.Excl;
      for (IvKey K : Footprint) {
        if (R.excludes(K))
          continue;
        NewExcl.push_back(K);
        composeKeyThroughCall(Ctx, B, K, K, Transformer::identity(),
                              Callee, Out, SigmaOut);
      }
      Out.push_back(IvRel::identityExcept(std::move(NewExcl)));
      return;
    }
    }
  }

  static void composeCallLambda(const Context &Ctx, const Binding &B,
                                const SummaryView &Callee,
                                std::vector<Rel> &Out, Ignore &SigmaOut) {
    (void)Ctx;
    if (Callee.Sigma->containsLambda()) {
      SigmaOut.addLambda();
      return;
    }
    for (const Rel &CR : *Callee.Rels) {
      if (CR.K == IvRel::Kind::Birth) {
        if (auto Back = combineKey(B, CR.To))
          Out.push_back(IvRel::birth(*Back, CR.BI));
      } else if (CR.K == IvRel::Kind::BirthRep) {
        Out.push_back(CR); // Reports propagate to callers.
      }
    }
  }

  static std::optional<State> applyRel(const Context &Ctx, const Rel &R,
                                       const State &S) {
    (void)Ctx;
    switch (R.K) {
    case IvRel::Kind::IdExcept:
      if (S.isLambda())
        return std::nullopt;
      if (S.K == IvFact::Kind::Under)
        return S;
      return R.excludes(S.Key) ? std::nullopt : std::optional<State>(S);
    case IvRel::Kind::Map:
      if (S.K == IvFact::Kind::Num && S.Key == R.From)
        return IvFact::num(R.To, R.T.apply(S.I));
      return std::nullopt;
    case IvRel::Kind::Birth:
      if (S.isLambda())
        return IvFact::num(R.To, R.BI);
      return std::nullopt;
    case IvRel::Kind::Rep:
      if (S.K == IvFact::Kind::Num && S.Key == R.From &&
          IvContext::underflows(R.T.apply(S.I)))
        return IvFact::under(R.P, R.N);
      return std::nullopt;
    case IvRel::Kind::BirthRep:
      if (S.isLambda())
        return IvFact::under(R.P, R.N);
      return std::nullopt;
    }
    return std::nullopt;
  }

  // -- Observation support --
  static bool relMayObserve(const Context &Ctx, const Rel &R) {
    (void)Ctx;
    return R.K == IvRel::Kind::Rep || R.K == IvRel::Kind::BirthRep;
  }
  static bool stateObservable(const Context &Ctx, const State &S) {
    (void)Ctx;
    return S.K == IvFact::Kind::Under;
  }

  // -- Pruning support --
  static bool relIsPrunable(const Rel &R) {
    // Rows with a concrete domain key are pruned; births are bounded by
    // allocation commands and the identity dominates everything.
    return R.K == IvRel::Kind::Map || R.K == IvRel::Kind::Rep;
  }
  static size_t relGenerality(const Rel &R) {
    return R.K == IvRel::Kind::IdExcept ? 0 : 1;
  }
  static bool domContains(const Context &Ctx, const Rel &R,
                          const State &S) {
    (void)Ctx;
    switch (R.K) {
    case IvRel::Kind::IdExcept:
      return S.K == IvFact::Kind::Num && !R.excludes(S.Key);
    case IvRel::Kind::Map:
    case IvRel::Kind::Rep:
      return S.K == IvFact::Kind::Num && S.Key == R.From;
    case IvRel::Kind::Birth:
    case IvRel::Kind::BirthRep:
      return S.isLambda();
    }
    return false;
  }
  static void addDomToIgnore(const Rel &R, Ignore &Sigma) {
    assert(R.K == IvRel::Kind::Map || R.K == IvRel::Kind::Rep);
    Sigma.addKey(R.From);
  }
  static bool ignoreCoversDom(const Ignore &Sigma, const Rel &R) {
    switch (R.K) {
    case IvRel::Kind::Map:
    case IvRel::Kind::Rep:
      return Sigma.containsKey(R.From);
    case IvRel::Kind::Birth:
    case IvRel::Kind::BirthRep:
      return Sigma.containsLambda();
    case IvRel::Kind::IdExcept:
      return false;
    }
    return false;
  }
  static void ignoreAll(Ignore &Sigma) { Sigma.makeAll(); }
};

} // namespace interval
} // namespace swift

#endif // SWIFT_CLIENTS_INTERVAL_INTERVALANALYSIS_H
