//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A numeric interval domain over saturating counters — the non-kill/gen
/// stress case for the framework, with genuinely relational bottom-up
/// summaries in the spirit of "Underapproximation of Procedure Summaries
/// for Integer Programs" (PAPERS.md): a procedure's effect on a counter is
/// captured as a *transformer* (a saturating shift with low/high
/// saturation thresholds, or a constant), not as a value set, so summary
/// composition is function composition rather than set algebra.
///
/// Counter semantics (the "interval language" reinterpretation of the IR;
/// mirrored exactly by the concrete witness in clients/Concrete.h):
///  * values are null or a saturating counter in NEG ∪ [-Cap, Cap] ∪ POS,
///    with NEG/POS absorbing (saturation is sticky),
///  * `x = new C` births a counter at 0; `x = null` clears it,
///  * `x.open()` increments, `x.close()` decrements, `x.reset()` zeroes;
///    other methods (and any method on null) are no-ops,
///  * a close() on a counter that may be <= 0 is an *underflow report*
///    Under(p, n), the domain's observable,
///  * `x = y` copies the value; calls pass counters by value (a callee
///    mutating a formal never affects the caller's actual); `x.f = y` /
///    `x = y.f` move values through a field-indexed global store with
///    weak (accumulating) updates.
///
/// Abstract facts are (key, interval) pairs plus the absorbing Under
/// reports; bottom-up relations map keys to keys *through a transformer*,
/// so the relation domain is infinite-in-principle and pruning/Sigma have
/// real work to do — unlike the kill/gen clients where relations are
/// finite edges.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_CLIENTS_INTERVAL_INTERVALDOMAIN_H
#define SWIFT_CLIENTS_INTERVAL_INTERVALDOMAIN_H

#include "ir/CallGraph.h"
#include "ir/Program.h"

#include <cassert>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace swift {
namespace interval {

/// Saturation cap: counters live in NEG ∪ [-Cap, Cap] ∪ POS.
inline constexpr int Cap = 4;
/// Sentinels; ordered below/above every finite value so plain int
/// comparisons work on Val directly.
inline constexpr int Neg = -100;
inline constexpr int Pos = 100;

/// Saturating add of a finite value (sentinels are fixed points).
inline int satAdd(int E, int D) {
  if (E == Neg || E == Pos)
    return E;
  int R = E + D;
  if (R > Cap)
    return Pos;
  if (R < -Cap)
    return Neg;
  return R;
}

/// A closed interval [Lo, Hi] over Val; Lo <= Hi always.
struct Interval {
  int Lo = 0;
  int Hi = 0;

  static Interval point(int V) { return {V, V}; }
  /// The underflow guard: does the interval contain a value <= 0?
  bool mayBeNonPositive() const { return Lo <= 0; }
  bool contains(int V) const { return Lo <= V && V <= Hi; }

  friend bool operator==(Interval A, Interval B) {
    return A.Lo == B.Lo && A.Hi == B.Hi;
  }
  friend bool operator!=(Interval A, Interval B) { return !(A == B); }
  friend bool operator<(Interval A, Interval B) {
    if (A.Lo != B.Lo)
      return A.Lo < B.Lo;
    return A.Hi < B.Hi;
  }

  std::string str() const;
};

/// A monotone counter transformer: either a saturating shift — inputs
/// <= L saturate to NEG, inputs >= H saturate to POS, the middle shifts
/// by D (NEG and POS are always fixed points) — or a constant. Kept in a
/// canonical form (normalize) so structural equality is semantic
/// equality, which is what lets the relational solver deduplicate
/// summary relations.
struct Transformer {
  enum class Kind : uint8_t { Shift, Const };

  Kind K = Kind::Shift;
  int D = 0;   ///< Shift amount.
  int L = Neg; ///< Low saturation threshold (e <= L -> NEG).
  int H = Pos; ///< High saturation threshold (e >= H -> POS).
  int C = 0;   ///< Const value.

  static Transformer identity() { return {}; }
  static Transformer inc() { return normalize(1, Neg, Cap); }
  static Transformer dec() { return normalize(-1, -Cap, Pos); }
  static Transformer constant(int V) {
    Transformer T;
    T.K = Kind::Const;
    T.C = V;
    return T;
  }

  /// Canonicalizes a shift: folds out-of-range middle outputs into the
  /// saturation thresholds, clamps thresholds to {NEG} ∪ [-Cap, Cap] and
  /// [-Cap, Cap] ∪ {POS}, and rewrites an empty middle into the canonical
  /// step form (D = 0, H = L + 1).
  static Transformer normalize(int D, int L, int H);

  /// A pure threshold step: e <= C -> NEG, else POS (over finite inputs).
  static Transformer step(int Threshold);

  int eval(int E) const;
  Interval apply(Interval I) const {
    // Transformers are monotone, so the image of an interval is the
    // interval of the endpoint images.
    return {eval(I.Lo), eval(I.Hi)};
  }

  friend bool operator==(const Transformer &A, const Transformer &B) {
    return A.K == B.K && A.D == B.D && A.L == B.L && A.H == B.H &&
           A.C == B.C;
  }
  friend bool operator<(const Transformer &A, const Transformer &B) {
    if (A.K != B.K)
      return A.K < B.K;
    if (A.D != B.D)
      return A.D < B.D;
    if (A.L != B.L)
      return A.L < B.L;
    if (A.H != B.H)
      return A.H < B.H;
    return A.C < B.C;
  }

  std::string str() const;
};

/// g after f: the canonical transformer computing g(f(e)).
Transformer compose(const Transformer &G, const Transformer &F);

/// A counter location: a variable or a (global, field-indexed) heap slot.
/// IsField disambiguates symbols used as both.
struct IvKey {
  Symbol Sym;
  bool IsField = false;

  static IvKey var(Symbol V) { return {V, false}; }
  static IvKey field(Symbol F) { return {F, true}; }

  friend bool operator==(IvKey A, IvKey B) {
    return A.Sym == B.Sym && A.IsField == B.IsField;
  }
  friend bool operator!=(IvKey A, IvKey B) { return !(A == B); }
  friend bool operator<(IvKey A, IvKey B) {
    if (A.Sym != B.Sym)
      return A.Sym < B.Sym;
    return A.IsField < B.IsField;
  }
};

/// One abstract fact: Lambda, a counter bound, or an underflow report.
struct IvFact {
  enum class Kind : uint8_t { Lambda, Num, Under };

  Kind K = Kind::Lambda;
  IvKey Key;              ///< Num.
  Interval I;             ///< Num.
  ProcId P = InvalidProc; ///< Under.
  NodeId N = InvalidNode; ///< Under.

  static IvFact lambda() { return IvFact(); }
  static IvFact num(IvKey Key, Interval I) {
    IvFact F;
    F.K = Kind::Num;
    F.Key = Key;
    F.I = I;
    return F;
  }
  static IvFact under(ProcId P, NodeId N) {
    IvFact F;
    F.K = Kind::Under;
    F.P = P;
    F.N = N;
    return F;
  }

  bool isLambda() const { return K == Kind::Lambda; }

  friend bool operator==(const IvFact &A, const IvFact &B) {
    return A.K == B.K && A.Key == B.Key && A.I == B.I && A.P == B.P &&
           A.N == B.N;
  }
  friend bool operator!=(const IvFact &A, const IvFact &B) {
    return !(A == B);
  }
  friend bool operator<(const IvFact &A, const IvFact &B) {
    if (A.K != B.K)
      return A.K < B.K;
    if (A.Key != B.Key)
      return A.Key < B.Key;
    if (A.I != B.I)
      return A.I < B.I;
    if (A.P != B.P)
      return A.P < B.P;
    return A.N < B.N;
  }

  std::string str(const Program &Prog) const;
};

/// What a TsCall method does to a counter.
enum class MethodOp : uint8_t { Inc, Dec, Reset, Nop };

/// Environment of one interval-analysis run.
class IvContext {
public:
  explicit IvContext(const Program &Prog);

  const Program &program() const { return Prog; }
  const CallGraph &callGraph() const { return *CG; }
  MethodOp methodOp(Symbol Method) const {
    auto It = Ops.find(Method);
    return It == Ops.end() ? MethodOp::Nop : It->second;
  }
  /// Every field symbol occurring in the program.
  const std::vector<Symbol> &allFields() const { return Fields; }
  /// The underflow guard, honoring the fault-injection hook.
  static bool underflows(Interval I);

private:
  const Program &Prog;
  std::unique_ptr<CallGraph> CG;
  std::unordered_map<Symbol, MethodOp> Ops;
  std::vector<Symbol> Fields;
};

} // namespace interval
} // namespace swift

namespace std {
template <> struct hash<swift::interval::IvKey> {
  size_t operator()(swift::interval::IvKey K) const noexcept {
    return (static_cast<size_t>(K.Sym.id()) << 1) | (K.IsField ? 1 : 0);
  }
};
template <> struct hash<swift::interval::IvFact> {
  size_t operator()(const swift::interval::IvFact &F) const noexcept {
    uint64_t X = (static_cast<uint64_t>(F.K) << 56) ^
                 (static_cast<uint64_t>(F.Key.Sym.id()) << 24) ^
                 (static_cast<uint64_t>(F.Key.IsField) << 23) ^
                 (static_cast<uint64_t>(F.I.Lo & 0xff) << 40) ^
                 (static_cast<uint64_t>(F.I.Hi & 0xff) << 48) ^
                 (static_cast<uint64_t>(F.P) << 8) ^ F.N;
    X ^= X >> 33;
    X *= 0xff51afd7ed558ccdULL;
    X ^= X >> 33;
    return static_cast<size_t>(X);
  }
};
} // namespace std

#endif // SWIFT_CLIENTS_INTERVAL_INTERVALDOMAIN_H
