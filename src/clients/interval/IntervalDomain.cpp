//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "clients/interval/IntervalDomain.h"

#include "clients/TestHooks.h"

#include <algorithm>
#include <set>

using namespace swift;
using namespace swift::interval;

static std::string valStr(int V) {
  if (V == Neg)
    return "-inf";
  if (V == Pos)
    return "+inf";
  return std::to_string(V);
}

std::string Interval::str() const {
  return "[" + valStr(Lo) + "," + valStr(Hi) + "]";
}

Transformer Transformer::step(int Threshold) {
  Transformer T;
  if (Threshold == Neg || Threshold < -Cap) {
    T.L = Neg; // No finite input saturates low...
    T.H = -Cap; // ...and every finite input saturates high.
    return T;
  }
  if (Threshold == Pos || Threshold >= Cap) {
    T.L = Cap; // Every finite input saturates low.
    T.H = Pos;
    return T;
  }
  T.L = Threshold;
  T.H = Threshold + 1;
  return T;
}

Transformer Transformer::normalize(int D, int L, int H) {
  // Middle outputs that would leave [-Cap, Cap] saturate; fold them into
  // the thresholds: e + D < -Cap iff e <= -Cap - D - 1, and
  // e + D > Cap iff e >= Cap - D + 1.
  if (L == Neg)
    L = -Cap - D - 1;
  else
    L = std::max(L, -Cap - D - 1);
  if (H == Pos)
    H = Cap - D + 1;
  else
    H = std::min(H, Cap - D + 1);

  // Clamp thresholds to the canonical ranges.
  if (L < -Cap)
    L = Neg;
  else if (L > Cap)
    L = Cap;
  if (H > Cap)
    H = Pos;
  else if (H < -Cap)
    H = -Cap;

  int MidLo = (L == Neg) ? -Cap : L + 1;
  int MidHi = (H == Pos) ? Cap : H - 1;
  if (std::max(MidLo, -Cap) > std::min(MidHi, Cap))
    return step(L); // Empty middle: a pure threshold (low wins in eval).

  Transformer T;
  T.D = D;
  T.L = L;
  T.H = H;
  return T;
}

int Transformer::eval(int E) const {
  if (K == Kind::Const)
    return C;
  if (E == Neg || E == Pos)
    return E; // Saturation is sticky.
  if (E <= L)
    return Neg;
  if (E >= H)
    return Pos;
  return satAdd(E, D);
}

std::string Transformer::str() const {
  if (K == Kind::Const)
    return "const(" + valStr(C) + ")";
  return "shift(" + std::to_string(D) + "," + valStr(L) + "," +
         valStr(H) + ")";
}

Transformer swift::interval::compose(const Transformer &G,
                                     const Transformer &F) {
  if (F.K == Transformer::Kind::Const)
    return Transformer::constant(G.eval(F.C));
  if (G.K == Transformer::Kind::Const)
    return G;

  auto Sub = [](int X, int D) {
    return (X == Neg || X == Pos) ? X : X - D;
  };
  // g(f(e)): NEG iff e <= F.L, or e in f's middle and f(e) <= G.L; POS
  // symmetrically. With a non-empty composite middle both regions are
  // contiguous, giving a plain shift.
  int L2 = Sub(G.L, F.D), H2 = Sub(G.H, F.D);
  int L = std::max(F.L, L2);
  int H = std::min(F.H, H2);

  int MidLo = (L == Neg) ? -Cap : std::max(L + 1, -Cap);
  int MidHi = (H == Pos) ? Cap : std::min(H - 1, Cap);
  if (MidLo > MidHi) {
    // Empty middle: everything is a threshold. The NEG region is
    // e <= F.L plus the prefix of f's middle whose image is <= G.L.
    int LastMid = (F.H == Pos) ? Cap : F.H - 1;
    int T = std::max(F.L, std::min(L2, LastMid));
    return Transformer::step(T);
  }
  return Transformer::normalize(F.D + G.D, L, H);
}

std::string IvFact::str(const Program &Prog) const {
  const SymbolTable &Syms = Prog.symbols();
  switch (K) {
  case Kind::Lambda:
    return "(lambda)";
  case Kind::Num:
    if (Key.IsField)
      return "in(*." + Syms.text(Key.Sym) + "," + I.str() + ")";
    return "in(" + Syms.text(Key.Sym) + "," + I.str() + ")";
  case Kind::Under:
    return "under@" + Syms.text(Prog.proc(P).name()) + ":" +
           std::to_string(N);
  }
  return "<?>";
}

IvContext::IvContext(const Program &Prog)
    : Prog(Prog), CG(std::make_unique<CallGraph>(Prog)) {
  std::set<Symbol> FieldSet;
  for (ProcId P = 0; P != Prog.numProcs(); ++P) {
    for (const CfgNode &Node : Prog.proc(P).nodes()) {
      const Command &Cmd = Node.Cmd;
      if (Cmd.Kind == CmdKind::Load || Cmd.Kind == CmdKind::Store)
        FieldSet.insert(Cmd.Field);
      if (Cmd.Kind == CmdKind::TsCall && !Ops.count(Cmd.Method)) {
        const std::string &Name = Prog.symbols().text(Cmd.Method);
        MethodOp Op = MethodOp::Nop;
        if (Name == "open")
          Op = MethodOp::Inc;
        else if (Name == "close")
          Op = MethodOp::Dec;
        else if (Name == "reset")
          Op = MethodOp::Reset;
        Ops.emplace(Cmd.Method, Op);
      }
    }
  }
  Fields.assign(FieldSet.begin(), FieldSet.end());
}

bool IvContext::underflows(Interval I) {
  if (clients::test::InjectIntervalGuardBug.load())
    return I.Lo < 0; // Injected bug: misses the exactly-zero close.
  return I.mayBeNonPositive();
}
