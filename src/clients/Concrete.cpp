//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "clients/Concrete.h"

#include "clients/Registry.h"
#include "clients/interval/IntervalDomain.h"
#include "support/Rng.h"

#include <stdexcept>
#include <unordered_map>
#include <vector>

using namespace swift;
using namespace swift::clients;

namespace {

//===----------------------------------------------------------------------===//
// Reference machine: taint, null-deref, reaching-defs
//===----------------------------------------------------------------------===//

/// A reference value: an object index, or null with an explicit-assignment
/// provenance bit (x = null and values copied from it).
struct RefVal {
  int Obj = -1; ///< Index into the object store; -1 is null.
  bool NullProv = false;
};

struct RefObj {
  bool Tainted = false;
  std::unordered_map<Symbol, RefVal> Fields;
};

class RefMachine {
public:
  RefMachine(const Program &Prog, const WitnessConfig &Cfg,
             const std::set<Symbol> &Sources, const std::set<Symbol> &Sinks)
      : Prog(Prog), Cfg(Cfg), Sources(Sources), Sinks(Sinks), R(Cfg.Seed) {}

  void run() {
    MainDefs = runProc(Prog.mainProc(), {}, 0).second;
    Completed = !Dead;
    ReachedExit = !Dead && !Halted;
  }

  const Program &Prog;
  const WitnessConfig &Cfg;
  const std::set<Symbol> &Sources;
  const std::set<Symbol> &Sinks;
  Rng R;

  std::set<std::pair<ProcId, NodeId>> TaintEvents;
  std::set<std::pair<ProcId, NodeId>> DerefEvents;
  /// Store sites that executed successfully (non-null base), per run.
  std::set<std::pair<ProcId, NodeId>> StoreSites;
  /// Latest direct-def site per variable of main's frame.
  std::unordered_map<Symbol, NodeId> MainDefs;
  uint64_t Steps = 0;
  bool Completed = false;
  bool ReachedExit = false;

private:
  using Env = std::unordered_map<Symbol, RefVal>;
  using Defs = std::unordered_map<Symbol, NodeId>;

  static RefVal lookup(const Env &E, Symbol V) {
    auto It = E.find(V);
    return It == E.end() ? RefVal{} : It->second;
  }

  /// A dereference of null: record a deref event when the null was
  /// explicitly assigned, then halt the run (Java-NPE semantics, exactly
  /// like concrete/Interpreter.cpp).
  void derefNull(ProcId P, NodeId N, const RefVal &V) {
    if (V.NullProv)
      DerefEvents.insert({P, N});
    Halted = true;
  }

  /// Executes \p P; returns ($ret value, final frame def sites).
  std::pair<RefVal, Defs> runProc(ProcId P, const std::vector<RefVal> &Args,
                                  unsigned Depth) {
    Env E;
    Defs D;
    if (Depth > Cfg.MaxDepth) {
      Dead = true;
      return {RefVal{}, D};
    }
    const Procedure &Proc = Prog.proc(P);
    for (size_t I = 0; I != Proc.params().size(); ++I)
      E[Proc.params()[I]] = I < Args.size() ? Args[I] : RefVal{};

    NodeId Cur = Proc.entry();
    while (!Dead && !Halted && Cur != Proc.exit()) {
      if (++Steps > Cfg.MaxSteps) {
        Dead = true;
        break;
      }
      const CfgNode &Node = Proc.node(Cur);
      exec(P, Node.Cmd, E, D, Depth);
      if (Node.Succs.empty())
        break;
      if (Node.Succs.size() == 1)
        Cur = Node.Succs[0];
      else if (Node.Succs.size() == 2)
        Cur = Node.Succs[R.below(1000) < Cfg.LoopContinuePerMille ? 0 : 1];
      else
        Cur = Node.Succs[R.below(Node.Succs.size())];
    }
    return {lookup(E, Prog.retVar()), std::move(D)};
  }

  void exec(ProcId P, const Command &C, Env &E, Defs &D, unsigned Depth) {
    switch (C.Kind) {
    case CmdKind::Nop:
      return;

    case CmdKind::Alloc: {
      int O = static_cast<int>(Objects.size());
      Objects.push_back(RefObj{Sources.count(C.Class) != 0, {}});
      E[C.Dst] = RefVal{O, false};
      D[C.Dst] = C.Self;
      return;
    }

    case CmdKind::Copy:
      E[C.Dst] = lookup(E, C.Src);
      D[C.Dst] = C.Self;
      return;

    case CmdKind::AssignNull:
      E[C.Dst] = RefVal{-1, true};
      D[C.Dst] = C.Self;
      return;

    case CmdKind::Load: {
      RefVal Base = lookup(E, C.Src);
      if (Base.Obj < 0)
        return derefNull(P, C.Self, Base);
      auto It = Objects[Base.Obj].Fields.find(C.Field);
      E[C.Dst] =
          It == Objects[Base.Obj].Fields.end() ? RefVal{} : It->second;
      D[C.Dst] = C.Self;
      return;
    }

    case CmdKind::Store: {
      RefVal Base = lookup(E, C.Dst);
      if (Base.Obj < 0)
        return derefNull(P, C.Self, Base);
      Objects[Base.Obj].Fields[C.Field] = lookup(E, C.Src);
      StoreSites.insert({P, C.Self});
      return;
    }

    case CmdKind::TsCall: {
      RefVal Recv = lookup(E, C.Src);
      if (Recv.Obj < 0)
        return derefNull(P, C.Self, Recv);
      if (Sinks.count(C.Method) && Objects[Recv.Obj].Tainted)
        TaintEvents.insert({P, C.Self});
      return;
    }

    case CmdKind::Call: {
      std::vector<RefVal> Args;
      Args.reserve(C.Args.size());
      for (Symbol A : C.Args)
        Args.push_back(lookup(E, A));
      RefVal Ret = runProc(C.Callee, Args, Depth + 1).first;
      if (C.Dst.isValid()) {
        E[C.Dst] = Ret;
        D.erase(C.Dst); // A call untracks its result's direct defs.
      }
      return;
    }
    }
  }

  std::vector<RefObj> Objects;
  bool Dead = false;
  bool Halted = false;
};

//===----------------------------------------------------------------------===//
// Counter machine: interval
//===----------------------------------------------------------------------===//

/// A counter value: null, or a saturating counter (sentinels included).
struct IntVal {
  bool Null = true;
  int C = 0;
};

class IntMachine {
public:
  IntMachine(const Program &Prog, const WitnessConfig &Cfg)
      : Prog(Prog), Cfg(Cfg), R(Cfg.Seed) {
    // Same method classification as IvContext: by name text.
    const SymbolTable &Syms = Prog.symbols();
    for (uint32_t I = 1; I <= Syms.size(); ++I) {
      Symbol S(I);
      const std::string &Name = Syms.text(S);
      if (Name == "open")
        Ops[S] = interval::MethodOp::Inc;
      else if (Name == "close")
        Ops[S] = interval::MethodOp::Dec;
      else if (Name == "reset")
        Ops[S] = interval::MethodOp::Reset;
    }
  }

  void run() {
    MainEnv = runProc(Prog.mainProc(), {}, 0).second;
    Completed = !Dead;
    ReachedExit = Completed; // The counter machine never halts early.
  }

  const Program &Prog;
  const WitnessConfig &Cfg;
  Rng R;

  std::set<std::pair<ProcId, NodeId>> UnderEvents;
  std::unordered_map<Symbol, IntVal> MainEnv;    ///< Main's final frame.
  std::unordered_map<Symbol, IntVal> FieldStore; ///< Global, by field.
  uint64_t Steps = 0;
  bool Completed = false;
  bool ReachedExit = false;

private:
  using Env = std::unordered_map<Symbol, IntVal>;

  static IntVal lookup(const Env &E, Symbol V) {
    auto It = E.find(V);
    return It == E.end() ? IntVal{} : It->second;
  }

  std::pair<IntVal, Env> runProc(ProcId P, const std::vector<IntVal> &Args,
                                 unsigned Depth) {
    Env E;
    if (Depth > Cfg.MaxDepth) {
      Dead = true;
      return {IntVal{}, E};
    }
    const Procedure &Proc = Prog.proc(P);
    for (size_t I = 0; I != Proc.params().size(); ++I)
      E[Proc.params()[I]] = I < Args.size() ? Args[I] : IntVal{};

    NodeId Cur = Proc.entry();
    while (!Dead && Cur != Proc.exit()) {
      if (++Steps > Cfg.MaxSteps) {
        Dead = true;
        break;
      }
      const CfgNode &Node = Proc.node(Cur);
      exec(P, Node.Cmd, E, Depth);
      if (Node.Succs.empty())
        break;
      if (Node.Succs.size() == 1)
        Cur = Node.Succs[0];
      else if (Node.Succs.size() == 2)
        Cur = Node.Succs[R.below(1000) < Cfg.LoopContinuePerMille ? 0 : 1];
      else
        Cur = Node.Succs[R.below(Node.Succs.size())];
    }
    IntVal Ret = lookup(E, Prog.retVar());
    return {Ret, std::move(E)};
  }

  void exec(ProcId P, const Command &C, Env &E, unsigned Depth) {
    switch (C.Kind) {
    case CmdKind::Nop:
      return;
    case CmdKind::Alloc:
      E[C.Dst] = IntVal{false, 0}; // Births a counter at zero.
      return;
    case CmdKind::Copy:
      E[C.Dst] = lookup(E, C.Src);
      return;
    case CmdKind::AssignNull:
      E[C.Dst] = IntVal{};
      return;
    case CmdKind::Load:
      // Fields are a global, field-indexed store; the base is irrelevant
      // (see IntervalDomain.h's concretization).
      E[C.Dst] = lookup(FieldStore, C.Field);
      return;
    case CmdKind::Store:
      FieldStore[C.Field] = lookup(E, C.Src);
      return;
    case CmdKind::TsCall: {
      IntVal Recv = lookup(E, C.Src);
      if (Recv.Null)
        return; // Methods on null are no-ops in the counter language.
      auto It = Ops.find(C.Method);
      interval::MethodOp Op =
          It == Ops.end() ? interval::MethodOp::Nop : It->second;
      switch (Op) {
      case interval::MethodOp::Inc:
        Recv.C = interval::satAdd(Recv.C, 1);
        break;
      case interval::MethodOp::Dec:
        if (Recv.C <= 0) // NEG is <= 0; POS is not.
          UnderEvents.insert({P, C.Self});
        Recv.C = interval::satAdd(Recv.C, -1);
        break;
      case interval::MethodOp::Reset:
        Recv.C = 0;
        break;
      case interval::MethodOp::Nop:
        return;
      }
      E[C.Src] = Recv;
      return;
    }
    case CmdKind::Call: {
      std::vector<IntVal> Args;
      Args.reserve(C.Args.size());
      for (Symbol A : C.Args)
        Args.push_back(lookup(E, A)); // Counters pass by value.
      IntVal Ret = runProc(C.Callee, Args, Depth + 1).first;
      if (C.Dst.isValid())
        E[C.Dst] = Ret;
      return;
    }
    }
  }

  std::unordered_map<Symbol, interval::MethodOp> Ops;
  bool Dead = false;
};

std::string defFactText(const Program &Prog, Symbol Var, bool IsField,
                        ProcId P, NodeId N) {
  const SymbolTable &Syms = Prog.symbols();
  return "def(" + std::string(IsField ? "*." : "") + Syms.text(Var) + "@" +
         Syms.text(Prog.proc(P).name()) + ":" + std::to_string(N) + ")";
}

} // namespace

WitnessResult clients::runClientWitness(const std::string &Domain,
                                        const Program &Prog,
                                        const WitnessConfig &Cfg) {
  WitnessResult W;

  if (Domain == "interval") {
    IntMachine M(Prog, Cfg);
    M.run();
    W.Events = std::move(M.UnderEvents);
    W.Completed = M.Completed;
    W.Steps = M.Steps;
    W.ExitFactsValid = M.ReachedExit;
    if (W.ExitFactsValid) {
      for (const auto &[V, Val] : M.MainEnv)
        if (!Val.Null)
          W.ExitFacts.insert(
              interval::IvFact::num(interval::IvKey::var(V),
                                    interval::Interval::point(Val.C))
                  .str(Prog));
      for (const auto &[F, Val] : M.FieldStore)
        if (!Val.Null)
          W.ExitFacts.insert(
              interval::IvFact::num(interval::IvKey::field(F),
                                    interval::Interval::point(Val.C))
                  .str(Prog));
    }
    return W;
  }

  if (Domain != "taint" && Domain != "nullderef" && Domain != "reachdefs")
    throw std::runtime_error("unknown witness domain '" + Domain + "'");

  std::set<Symbol> Sources = taintSourceClasses(Prog);
  std::set<Symbol> Sinks = taintSinkMethods(Prog);
  RefMachine M(Prog, Cfg, Sources, Sinks);
  M.run();
  W.Completed = M.Completed;
  W.Steps = M.Steps;

  if (Domain == "taint") {
    W.Events = std::move(M.TaintEvents);
  } else if (Domain == "nullderef") {
    W.Events = std::move(M.DerefEvents);
  } else { // reachdefs: no reports; main-exit def facts instead.
    W.ExitFactsValid = M.ReachedExit;
    if (W.ExitFactsValid) {
      for (const auto &[V, N] : M.MainDefs)
        W.ExitFacts.insert(
            defFactText(Prog, V, false, Prog.mainProc(), N));
      for (const auto &[P, N] : M.StoreSites)
        W.ExitFacts.insert(defFactText(
            Prog, Prog.proc(P).node(N).Cmd.Field, true, P, N));
    }
  }
  return W;
}
