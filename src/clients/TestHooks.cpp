//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "clients/TestHooks.h"

namespace swift {
namespace clients {
namespace test {

std::atomic<bool> InjectTaintStoreBug{false};
std::atomic<bool> InjectNullStoreBug{false};
std::atomic<bool> InjectReachDefsStoreBug{false};
std::atomic<bool> InjectIntervalGuardBug{false};

bool injectDomainBug(const std::string &Domain, bool On) {
  if (Domain == "taint")
    InjectTaintStoreBug.store(On);
  else if (Domain == "nullderef")
    InjectNullStoreBug.store(On);
  else if (Domain == "reachdefs")
    InjectReachDefsStoreBug.store(On);
  else if (Domain == "interval")
    InjectIntervalGuardBug.store(On);
  else
    return false;
  return true;
}

} // namespace test
} // namespace clients
} // namespace swift
