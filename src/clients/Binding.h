//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A domain-independent call-site binding shared by every client analysis
/// (the IFDS adapter and the interval domain): callee, result variable,
/// the program's $ret variable, and the actual-to-formal map, with the
/// stable-formal query the return mappings need. This is the IR-level
/// slice of typestate's CallBinding with no domain state attached.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_CLIENTS_BINDING_H
#define SWIFT_CLIENTS_BINDING_H

#include "ir/Program.h"

#include <cassert>
#include <utility>
#include <vector>

namespace swift {
namespace clients {

class Binding {
public:
  Binding(const Program &Prog, const Command &Call)
      : Callee(Call.Callee), CalleeProc(&Prog.proc(Call.Callee)),
        Result(Call.Dst), Ret(Prog.retVar()) {
    assert(Call.Kind == CmdKind::Call);
    for (size_t I = 0; I != Call.Args.size(); ++I) {
      Symbol Actual = Call.Args[I];
      Symbol Formal = CalleeProc->params()[I];
      bool Found = false;
      for (auto &[A, Fs] : ActualToFormals)
        if (A == Actual) {
          Fs.push_back(Formal);
          Found = true;
          break;
        }
      if (!Found)
        ActualToFormals.push_back({Actual, {Formal}});
    }
  }

  ProcId callee() const { return Callee; }
  Symbol resultVar() const { return Result; }
  Symbol retVar() const { return Ret; }
  const std::vector<std::pair<Symbol, std::vector<Symbol>>> &
  bindings() const {
    return ActualToFormals;
  }
  const std::vector<Symbol> &formalsOf(Symbol V) const {
    static const std::vector<Symbol> Empty;
    for (const auto &[A, Fs] : ActualToFormals)
      if (A == V)
        return Fs;
    return Empty;
  }
  Symbol actualOf(Symbol F) const {
    for (const auto &[A, Fs] : ActualToFormals)
      for (Symbol G : Fs)
        if (G == F)
          return A;
    return Symbol();
  }
  bool isStableFormal(Symbol F) const {
    return CalleeProc->isStableParam(F);
  }

private:
  ProcId Callee;
  const Procedure *CalleeProc;
  Symbol Result;
  Symbol Ret;
  std::vector<std::pair<Symbol, std::vector<Symbol>>> ActualToFormals;
};

} // namespace clients
} // namespace swift

#endif // SWIFT_CLIENTS_BINDING_H
