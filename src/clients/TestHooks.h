//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Fault-injection switches for the client domains, in the style of
/// `typestate::test::InjectTsCallWeakUpdateBug`: each flag disables one
/// load-bearing gen/guard in a client's abstract transfer, turning the
/// analysis unsound on programs that exercise it. The domain difftest
/// oracle must then report a Soundness violation (the concrete witness is
/// untouched), which is how the per-client oracle campaigns and the
/// checked-in corpus reproducers prove the oracle has teeth.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_CLIENTS_TESTHOOKS_H
#define SWIFT_CLIENTS_TESTHOOKS_H

#include <atomic>
#include <string>

namespace swift {
namespace clients {
namespace test {

/// Taint: drop the Field(f) gen at `Store` — taint laundered through the
/// heap escapes tracking.
extern std::atomic<bool> InjectTaintStoreBug;

/// Null-deref: drop the NullField(f) gen at `Store` — an explicit null
/// stored to a field and loaded back dereferences without a report.
extern std::atomic<bool> InjectNullStoreBug;

/// Reaching-defs: drop the DefF gen at `Store` — the store site vanishes
/// from the reaching set the concrete witness observes.
extern std::atomic<bool> InjectReachDefsStoreBug;

/// Interval: weaken the underflow guard from `may be <= 0` to
/// `may be < 0` — a close() on an exactly-zero counter goes unreported.
extern std::atomic<bool> InjectIntervalGuardBug;

/// Enables the flag for \p Domain ("taint", "nullderef", "reachdefs",
/// "interval"); returns false for unknown names.
bool injectDomainBug(const std::string &Domain, bool On);

} // namespace test
} // namespace clients
} // namespace swift

#endif // SWIFT_CLIENTS_TESTHOOKS_H
