//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Flow- and context-insensitive, field-sensitive Andersen-style points-to
/// analysis over the whole program. It supplies the `mayalias(v, h)` oracle
/// that the typestate analysis consults for weak updates (summaries B3/B4
/// in the paper's Section 2), standing in for the may-alias analysis of the
/// Chord platform.
///
//===----------------------------------------------------------------------===//

#ifndef SWIFT_ALIAS_ALIASANALYSIS_H
#define SWIFT_ALIAS_ALIASANALYSIS_H

#include "ir/Program.h"

#include <set>
#include <unordered_map>
#include <vector>

namespace swift {

class AliasAnalysis {
public:
  explicit AliasAnalysis(const Program &Prog);

  /// May variable \p V of procedure \p P point to an object allocated at
  /// site \p H? Sound over-approximation; unknown variables never point
  /// anywhere.
  bool mayPointTo(ProcId P, Symbol V, SiteId H) const {
    int Node = findVar(P, V);
    return Node >= 0 && PointsTo[Node].count(H) != 0;
  }

  /// The points-to set of variable \p V of procedure \p P (empty set if the
  /// variable never occurs).
  const std::set<SiteId> &pointsTo(ProcId P, Symbol V) const {
    static const std::set<SiteId> Empty;
    int Node = findVar(P, V);
    return Node < 0 ? Empty : PointsTo[Node];
  }

  /// The points-to set of field \p F of objects allocated at \p H.
  const std::set<SiteId> &fieldPointsTo(SiteId H, Symbol F) const {
    static const std::set<SiteId> Empty;
    int Node = findField(H, F);
    return Node < 0 ? Empty : PointsTo[Node];
  }

  /// Total size of all points-to sets (a cheap complexity metric).
  size_t totalPtsSize() const;

private:
  struct VarKey {
    ProcId P;
    Symbol V;
    bool operator==(const VarKey &O) const { return P == O.P && V == O.V; }
  };
  struct VarKeyHash {
    size_t operator()(const VarKey &K) const noexcept {
      return std::hash<uint64_t>()((static_cast<uint64_t>(K.P) << 32) |
                                   K.V.id());
    }
  };
  struct FieldKey {
    SiteId H;
    Symbol F;
    bool operator==(const FieldKey &O) const { return H == O.H && F == O.F; }
  };
  struct FieldKeyHash {
    size_t operator()(const FieldKey &K) const noexcept {
      return std::hash<uint64_t>()((static_cast<uint64_t>(K.H) << 32) |
                                   K.F.id());
    }
  };

  int findVar(ProcId P, Symbol V) const {
    auto It = VarIndex.find(VarKey{P, V});
    return It == VarIndex.end() ? -1 : static_cast<int>(It->second);
  }
  int findField(SiteId H, Symbol F) const {
    auto It = FieldIndex.find(FieldKey{H, F});
    return It == FieldIndex.end() ? -1 : static_cast<int>(It->second);
  }

  size_t varNode(ProcId P, Symbol V);
  size_t fieldNode(SiteId H, Symbol F);
  void addEdge(size_t From, size_t To);
  void solve();

  // Deferred (dynamic) constraints attached to the pointer operand.
  struct LoadConstraint {
    size_t Dst;
    Symbol Field;
  };
  struct StoreConstraint {
    size_t Src;
    Symbol Field;
  };

  std::unordered_map<VarKey, size_t, VarKeyHash> VarIndex;
  std::unordered_map<FieldKey, size_t, FieldKeyHash> FieldIndex;
  std::vector<std::set<SiteId>> PointsTo;
  std::vector<std::vector<size_t>> CopyEdges;
  std::vector<std::vector<LoadConstraint>> Loads;
  std::vector<std::vector<StoreConstraint>> Stores;
  std::vector<bool> InWorklist;
  std::vector<size_t> Worklist;
};

} // namespace swift

#endif // SWIFT_ALIAS_ALIASANALYSIS_H
