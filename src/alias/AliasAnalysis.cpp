//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//

#include "alias/AliasAnalysis.h"

#include <cassert>

using namespace swift;

size_t AliasAnalysis::varNode(ProcId P, Symbol V) {
  auto [It, Inserted] = VarIndex.try_emplace(VarKey{P, V}, PointsTo.size());
  if (Inserted) {
    PointsTo.emplace_back();
    CopyEdges.emplace_back();
    Loads.emplace_back();
    Stores.emplace_back();
    InWorklist.push_back(false);
  }
  return It->second;
}

size_t AliasAnalysis::fieldNode(SiteId H, Symbol F) {
  auto [It, Inserted] =
      FieldIndex.try_emplace(FieldKey{H, F}, PointsTo.size());
  if (Inserted) {
    PointsTo.emplace_back();
    CopyEdges.emplace_back();
    Loads.emplace_back();
    Stores.emplace_back();
    InWorklist.push_back(false);
  }
  return It->second;
}

void AliasAnalysis::addEdge(size_t From, size_t To) {
  for (size_t E : CopyEdges[From])
    if (E == To)
      return;
  CopyEdges[From].push_back(To);
  if (!PointsTo[From].empty() && !InWorklist[From]) {
    InWorklist[From] = true;
    Worklist.push_back(From);
  }
}

AliasAnalysis::AliasAnalysis(const Program &Prog) {
  // Build base constraints from every command in the program.
  for (ProcId P = 0; P != Prog.numProcs(); ++P) {
    const Procedure &Proc = Prog.proc(P);
    for (const CfgNode &Node : Proc.nodes()) {
      const Command &C = Node.Cmd;
      switch (C.Kind) {
      case CmdKind::Nop:
      case CmdKind::AssignNull:
      case CmdKind::TsCall:
        break;
      case CmdKind::Alloc: {
        size_t N = varNode(P, C.Dst);
        if (PointsTo[N].insert(C.Site).second && !InWorklist[N]) {
          InWorklist[N] = true;
          Worklist.push_back(N);
        }
        break;
      }
      case CmdKind::Copy:
        addEdge(varNode(P, C.Src), varNode(P, C.Dst));
        break;
      case CmdKind::Load: {
        // varNode may grow the vectors; resolve both nodes first.
        size_t Dst = varNode(P, C.Dst);
        size_t Base = varNode(P, C.Src);
        Loads[Base].push_back(LoadConstraint{Dst, C.Field});
        break;
      }
      case CmdKind::Store: {
        size_t Base = varNode(P, C.Dst);
        size_t Src = varNode(P, C.Src);
        Stores[Base].push_back(StoreConstraint{Src, C.Field});
        break;
      }
      case CmdKind::Call: {
        const Procedure &Callee = Prog.proc(C.Callee);
        assert(C.Args.size() == Callee.params().size());
        for (size_t I = 0; I != C.Args.size(); ++I)
          addEdge(varNode(P, C.Args[I]),
                  varNode(C.Callee, Callee.params()[I]));
        if (C.Dst.isValid())
          addEdge(varNode(C.Callee, Prog.retVar()), varNode(P, C.Dst));
        break;
      }
      }
    }
  }
  solve();
}

void AliasAnalysis::solve() {
  while (!Worklist.empty()) {
    size_t N = Worklist.back();
    Worklist.pop_back();
    InWorklist[N] = false;

    // Materialize dynamic edges implied by N's current points-to set.
    // Copies of the constraint lists are taken because fieldNode() may
    // reallocate the underlying vectors.
    std::vector<LoadConstraint> LoadsOfN = Loads[N];
    std::vector<StoreConstraint> StoresOfN = Stores[N];
    std::set<SiteId> Pts = PointsTo[N];
    for (SiteId H : Pts) {
      for (const LoadConstraint &L : LoadsOfN)
        addEdge(fieldNode(H, L.Field), L.Dst);
      for (const StoreConstraint &S : StoresOfN)
        addEdge(S.Src, fieldNode(H, S.Field));
    }

    // Propagate along copy edges.
    for (size_t To : CopyEdges[N]) {
      bool Grew = false;
      for (SiteId H : Pts)
        if (PointsTo[To].insert(H).second)
          Grew = true;
      if (Grew && !InWorklist[To]) {
        InWorklist[To] = true;
        Worklist.push_back(To);
      }
    }
  }
}

size_t AliasAnalysis::totalPtsSize() const {
  size_t Total = 0;
  for (const std::set<SiteId> &S : PointsTo)
    Total += S.size();
  return Total;
}
