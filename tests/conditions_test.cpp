//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Exhaustive checks of the SWIFT framework conditions (the paper's
/// Figure 4) for the typestate analysis pair, over a small abstract
/// universe:
///
///  C1: trans and rtrans are equally precise — for every primitive
///      command c, relation r, and state sigma, the outputs of the
///      relations rtrans(c)(r) on sigma equal trans(c) applied to r's
///      output on sigma.
///  C2: rcomp models relation composition exactly.
///  C3: wp is the weakest precondition: within r's domain, the input
///      satisfies wp(r, phi) iff r's output satisfies phi.
///
/// The universe: two variables, one field, two allocation sites of the
/// tracked class, a three-state automaton — 486 well-formed non-Lambda
/// states plus Lambda, enumerated in full.
///
//===----------------------------------------------------------------------===//

#include "ir/ProgramBuilder.h"
#include "typestate/Relation.h"
#include "typestate/Transfer.h"

#include <gtest/gtest.h>

#include <set>

using namespace swift;

namespace {

class ConditionsTest : public ::testing::Test {
protected:
  void SetUp() override {
    ProgramBuilder B;
    B.addTypestate("File", {"closed", "opened", "err"}, "closed", "err",
                   {{"closed", "open", "opened"},
                    {"opened", "close", "closed"}});
    // The program gives the vocabulary (vars a, b; field f; sites h0, h1)
    // and a may-alias oracle in which `a` may point to both sites while
    // `b` may point only to h1.
    B.beginProc("main", {});
    B.alloc("a", "File");  // h0
    B.alloc("b", "File");  // h1
    B.copy("a", "b");      // pts(a) includes h1 too
    B.store("a", "f", "b");
    B.load("b", "a", "f");
    B.tsCall("a", "open");
    B.tsCall("b", "close");
    B.endProc();
    Prog = B.finish();
    Ctx = std::make_unique<TsContext>(*Prog, Prog->symbols().intern("File"));

    Main = Prog->mainProc();
    VarA = Prog->symbols().intern("a");
    VarB = Prog->symbols().intern("b");
    FieldF = Prog->symbols().intern("f");

    // All access paths over the vocabulary (length <= 1 keeps the
    // universe enumerable; longer paths exercise the same code paths).
    Paths = {AccessPath(VarA), AccessPath(VarB), AccessPath(VarA, FieldF),
             AccessPath(VarB, FieldF)};

    buildStates();
    buildCommands();
    buildRelations();
  }

  /// Every well-formed (disjoint A/N) state over the vocabulary, plus
  /// Lambda.
  void buildStates() {
    States.push_back(TsAbstractState::lambda());
    size_t NumPaths = Paths.size();
    // Each path is in A, in N, or in neither: 3^4 assignments.
    size_t Assignments = 1;
    for (size_t I = 0; I != NumPaths; ++I)
      Assignments *= 3;
    for (SiteId H = 0; H != 2; ++H) {
      for (TState T = 0; T != 3; ++T) {
        for (size_t Mask = 0; Mask != Assignments; ++Mask) {
          ApSet A, N;
          size_t M = Mask;
          for (size_t I = 0; I != NumPaths; ++I) {
            switch (M % 3) {
            case 1:
              A.insert(Paths[I]);
              break;
            case 2:
              N.insert(Paths[I]);
              break;
            default:
              break;
            }
            M /= 3;
          }
          States.emplace_back(H, T, std::move(A), std::move(N));
        }
      }
    }
  }

  void buildCommands() {
    Commands.push_back(Command::makeNop());
    Commands.push_back(Command::makeAlloc(VarA, Prog->site(0).Class, 0));
    Commands.push_back(Command::makeCopy(VarA, VarB));
    Commands.push_back(Command::makeCopy(VarA, VarA));
    Commands.push_back(Command::makeAssignNull(VarB));
    Commands.push_back(Command::makeLoad(VarA, VarB, FieldF));
    Commands.push_back(Command::makeLoad(VarA, VarA, FieldF));
    Commands.push_back(Command::makeStore(VarA, FieldF, VarB));
    Commands.push_back(Command::makeStore(VarB, FieldF, VarB));
    Commands.push_back(
        Command::makeTsCall(VarA, Prog->symbols().intern("open")));
    Commands.push_back(
        Command::makeTsCall(VarB, Prog->symbols().intern("close")));
    Commands.push_back(
        Command::makeTsCall(VarA, Prog->symbols().intern("foreign")));
  }

  /// Seed relations: the identity, every primitive relation, a few Alloc
  /// relations, and pairwise compositions (which have richer kill/gen
  /// sets and predicates).
  void buildRelations() {
    Rels.push_back(TsRelation::makeIdentity(3));
    std::vector<TsRelation> Prims;
    for (const Command &C : Commands) {
      if (C.Kind == CmdKind::Nop)
        continue;
      for (TsRelation &R : tsPrimRels(*Ctx, Main, C))
        Prims.push_back(std::move(R));
    }
    for (const TsRelation &R : Prims)
      Rels.push_back(R);
    // A sample of compositions.
    for (size_t I = 0; I < Prims.size(); I += 3)
      for (size_t J = 1; J < Prims.size(); J += 4)
        if (std::optional<TsRelation> C =
                tsRcomp(*Ctx, Prims[I], Prims[J]))
          Rels.push_back(std::move(*C));
    // Alloc relations from a few concrete states.
    for (size_t I = 1; I < States.size(); I += 97)
      Rels.push_back(TsRelation::makeAlloc(States[I]));
  }

  /// gamma of a relation set applied to one input.
  std::set<TsAbstractState> applyAll(const std::vector<TsRelation> &Rs,
                                     const TsAbstractState &S) {
    std::set<TsAbstractState> Out;
    for (const TsRelation &R : Rs)
      if (std::optional<TsAbstractState> O = R.apply(*Ctx, S))
        Out.insert(*O);
    return Out;
  }

  std::unique_ptr<Program> Prog;
  std::unique_ptr<TsContext> Ctx;
  ProcId Main;
  Symbol VarA, VarB, FieldF;
  std::vector<AccessPath> Paths;
  std::vector<TsAbstractState> States;
  std::vector<Command> Commands;
  std::vector<TsRelation> Rels;
};

TEST_F(ConditionsTest, UniverseSanity) {
  EXPECT_EQ(States.size(), 1u + 2u * 3u * 81u);
  EXPECT_GT(Rels.size(), 30u);
}

/// The primitive relations of every command partition the non-Lambda
/// state space: exactly one applies to every state.
TEST_F(ConditionsTest, PrimitiveRelationsPartitionStates) {
  for (const Command &C : Commands) {
    if (C.Kind == CmdKind::Nop)
      continue;
    std::vector<TsRelation> Prims = tsPrimRels(*Ctx, Main, C);
    for (const TsAbstractState &S : States) {
      if (S.isLambda())
        continue;
      unsigned Applicable = 0;
      for (const TsRelation &R : Prims)
        if (R.domContains(*Ctx, S))
          ++Applicable;
      EXPECT_EQ(Applicable, 1u)
          << "state " << S.str(*Prog) << " command " << C.str(*Prog);
    }
  }
}

/// C1: rtrans(c)(r) composed equals trans(c) after r, for every state.
TEST_F(ConditionsTest, C1TransferEquivalence) {
  uint64_t Checked = 0;
  for (const Command &C : Commands) {
    for (const TsRelation &R : Rels) {
      std::vector<TsRelation> Extended = tsRtrans(*Ctx, Main, C, R);
      for (const TsAbstractState &S : States) {
        std::set<TsAbstractState> Lhs = applyAll(Extended, S);
        std::set<TsAbstractState> Rhs;
        if (std::optional<TsAbstractState> Mid = R.apply(*Ctx, S))
          for (const TsAbstractState &O : tsTransfer(*Ctx, Main, C, *Mid))
            if (!O.isLambda())
              Rhs.insert(O);
        ASSERT_EQ(Lhs, Rhs) << "command " << C.str(*Prog) << "\nrelation "
                            << R.str(*Prog) << "\nstate " << S.str(*Prog);
        ++Checked;
      }
    }
  }
  EXPECT_GT(Checked, 100000u);
}

/// C2: rcomp(r1, r2) is exactly the composition of the two relations.
TEST_F(ConditionsTest, C2CompositionEquivalence) {
  for (size_t I = 0; I < Rels.size(); I += 2) {
    for (size_t J = 0; J < Rels.size(); J += 3) {
      const TsRelation &R1 = Rels[I];
      const TsRelation &R2 = Rels[J];
      std::optional<TsRelation> Comp = tsRcomp(*Ctx, R1, R2);
      for (size_t K = 0; K < States.size(); K += 5) {
        const TsAbstractState &S = States[K];
        std::optional<TsAbstractState> Lhs;
        if (Comp)
          Lhs = Comp->apply(*Ctx, S);
        std::optional<TsAbstractState> Rhs;
        if (std::optional<TsAbstractState> Mid = R1.apply(*Ctx, S))
          Rhs = R2.apply(*Ctx, *Mid);
        ASSERT_EQ(Lhs.has_value(), Rhs.has_value())
            << "r1 " << R1.str(*Prog) << "\nr2 " << R2.str(*Prog)
            << "\nstate " << S.str(*Prog);
        if (Lhs) {
          ASSERT_EQ(*Lhs, *Rhs)
              << "r1 " << R1.str(*Prog) << "\nr2 " << R2.str(*Prog)
              << "\nstate " << S.str(*Prog);
        }
      }
    }
  }
}

/// C3 (as used by rcomp and the Sigma propagation): within r's domain,
/// the input satisfies wp(r, phi) iff r's output satisfies phi.
TEST_F(ConditionsTest, C3WeakestPrecondition) {
  std::vector<TsPred> Posts;
  for (const TsRelation &R : Rels)
    if (!R.isAlloc() && !R.phi().isTrue())
      Posts.push_back(R.phi());

  for (const TsRelation &R : Rels) {
    if (R.isAlloc())
      continue;
    for (const TsPred &Post : Posts) {
      std::optional<TsPred> Pre = tsWpPred(R, Post);
      for (size_t K = 0; K < States.size(); K += 3) {
        const TsAbstractState &S = States[K];
        if (S.isLambda() || !R.domContains(*Ctx, S))
          continue;
        bool OutSat = Post.satisfiedBy(*Ctx, R.transform(S));
        bool InSat = Pre && Pre->satisfiedBy(*Ctx, S);
        ASSERT_EQ(InSat, OutSat)
            << "relation " << R.str(*Prog) << "\npost " << Post.str(*Prog)
            << "\nstate " << S.str(*Prog);
      }
    }
  }
}

/// Applying a relation to a well-formed state yields a well-formed state
/// (disjoint must / must-not sets) — the gen-protection invariant.
TEST_F(ConditionsTest, ApplicationPreservesWellFormedness) {
  for (const TsRelation &R : Rels)
    for (size_t K = 0; K < States.size(); K += 2)
      if (std::optional<TsAbstractState> O = R.apply(*Ctx, States[K])) {
        for (const AccessPath &P : O->must())
          ASSERT_FALSE(O->mustNot().contains(P))
              << R.str(*Prog) << " on " << States[K].str(*Prog);
      }
}

} // namespace
