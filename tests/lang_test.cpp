//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the TSL frontend: lexer tokens and positions, parser AST
/// shapes and diagnostics, lowering, and the generator-TSL round trip
/// (generated TSL source parses back to a structurally identical
/// program).
///
//===----------------------------------------------------------------------===//

#include "genprog/Generator.h"
#include "lang/Lower.h"
#include "lang/Parser.h"

#include <gtest/gtest.h>

using namespace swift;

namespace {

TEST(LexerTest, TokensAndPositions) {
  Lexer L("proc f(x) { x = new File; } // comment\n-> - * ;");
  std::vector<Token> Toks = L.lexAll();
  ASSERT_GE(Toks.size(), 14u);
  EXPECT_EQ(Toks[0].Kind, TokKind::KwProc);
  EXPECT_EQ(Toks[1].Kind, TokKind::Ident);
  EXPECT_EQ(Toks[1].Text, "f");
  EXPECT_EQ(Toks[0].Line, 1u);
  EXPECT_EQ(Toks[0].Col, 1u);
  // The tokens on line 2.
  Token Arrow = Toks[Toks.size() - 5];
  EXPECT_EQ(Arrow.Kind, TokKind::Arrow);
  EXPECT_EQ(Arrow.Line, 2u);
  EXPECT_EQ(Toks.back().Kind, TokKind::Eof);
}

TEST(LexerTest, RejectsUnknownCharacter) {
  Lexer L("proc f() { x = 42; }");
  EXPECT_THROW(L.lexAll(), SyntaxError);
}

TEST(ParserTest, StatementShapes) {
  ast::Module M = Parser::parse(R"(
    typestate T { start s; error e; s -m-> e; }
    proc main() {
      a = new T;
      b = a;
      c = null;
      d = a.fld;
      a.fld = b;
      a.m();
      go(a, b);
      r = go(b, a);
      if (*) { a = b; } else { b = a; }
      while (*) { a.m(); }
      return a;
    }
    proc go(x, y) { return x; }
  )");
  ASSERT_EQ(M.Typestates.size(), 1u);
  EXPECT_EQ(M.Typestates[0].Name, "T");
  EXPECT_EQ(M.Typestates[0].Start, "s");
  EXPECT_EQ(M.Typestates[0].Error, "e");
  ASSERT_EQ(M.Typestates[0].Transitions.size(), 1u);
  EXPECT_EQ(M.Typestates[0].Transitions[0].Method, "m");

  ASSERT_EQ(M.Procs.size(), 2u);
  const std::vector<ast::Stmt> &Body = M.Procs[0].Body;
  ASSERT_EQ(Body.size(), 11u);
  using K = ast::Stmt::Kind;
  EXPECT_EQ(Body[0].K, K::Alloc);
  EXPECT_EQ(Body[1].K, K::Copy);
  EXPECT_EQ(Body[2].K, K::AssignNull);
  EXPECT_EQ(Body[3].K, K::Load);
  EXPECT_EQ(Body[4].K, K::Store);
  EXPECT_EQ(Body[5].K, K::TsCall);
  EXPECT_EQ(Body[6].K, K::Call);
  EXPECT_TRUE(Body[6].A.empty());
  EXPECT_EQ(Body[7].K, K::Call);
  EXPECT_EQ(Body[7].A, "r");
  ASSERT_EQ(Body[7].Args.size(), 2u);
  EXPECT_EQ(Body[8].K, K::If);
  EXPECT_EQ(Body[8].Then.size(), 1u);
  EXPECT_EQ(Body[8].Else.size(), 1u);
  EXPECT_EQ(Body[9].K, K::While);
  EXPECT_EQ(Body[10].K, K::Return);
  EXPECT_TRUE(Body[10].HasValue);
}

TEST(ParserTest, DiagnosticsCarryPositions) {
  try {
    Parser::parse("proc main() { x = ; }");
    FAIL() << "expected SyntaxError";
  } catch (const SyntaxError &E) {
    EXPECT_EQ(E.line(), 1u);
    EXPECT_NE(std::string(E.what()).find("expected"), std::string::npos);
  }
}

TEST(ParserTest, RejectsMalformedTypestate) {
  EXPECT_THROW(Parser::parse("typestate T { error e; }"), SyntaxError);
  EXPECT_THROW(Parser::parse("typestate T { start s; }"), SyntaxError);
  EXPECT_THROW(Parser::parse("typestate T { start s; error e; s -m> t; }"),
               SyntaxError);
}

TEST(LowerTest, SemanticErrors) {
  EXPECT_THROW(parseProgram("proc main() { f(); }"), std::runtime_error);
  EXPECT_THROW(parseProgram(R"(
    proc f(x) {}
    proc main() { f(); }
  )"),
               std::runtime_error);
  EXPECT_THROW(parseProgram(R"(
    proc f() {}
    proc f() {}
    proc main() {}
  )"),
               std::runtime_error);
  // Main must exist and take no parameters.
  EXPECT_THROW(parseProgram("proc notmain() {}"), std::runtime_error);
  EXPECT_THROW(parseProgram("proc main(x) {}"), std::runtime_error);
}

TEST(LowerTest, AlternateRootName) {
  std::unique_ptr<Program> P = parseProgram(R"(
    proc entry() {}
  )",
                                            "entry");
  EXPECT_EQ(P->mainProc(), P->procId(P->symbols().intern("entry")));
}

/// Generated TSL source parses back to a structurally identical program.
TEST(RoundTripTest, GeneratedWorkloadsReparse) {
  for (uint64_t Seed : {7u, 101u, 999u}) {
    GenConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.Layers = 2;
    Cfg.ProcsPerLayer = 4;
    Cfg.NumDrivers = 3;
    Cfg.ObjectsPerDriver = 3;
    GenStats Direct;
    std::unique_ptr<Program> P1 = generateWorkload(Cfg, &Direct);

    std::string Tsl = generateWorkloadTsl(Cfg);
    std::unique_ptr<Program> P2 = parseProgram(Tsl);

    EXPECT_EQ(P1->numProcs(), P2->numProcs());
    EXPECT_EQ(P1->numCommands(), P2->numCommands());
    EXPECT_EQ(P1->numCallCommands(), P2->numCallCommands());
    EXPECT_EQ(P1->numSites(), P2->numSites());
    EXPECT_EQ(P1->numSpecs(), P2->numSpecs());
  }
}

} // namespace
