//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the support layer: symbol interning, the deterministic
/// PRNG, budgets, and the paper-style formatting helpers.
///
//===----------------------------------------------------------------------===//

#include "support/Rng.h"
#include "support/Stats.h"
#include "support/Symbol.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <set>

using namespace swift;

namespace {

TEST(SymbolTest, InterningIsStable) {
  SymbolTable T;
  Symbol A = T.intern("alpha");
  Symbol B = T.intern("beta");
  Symbol A2 = T.intern("alpha");
  EXPECT_EQ(A, A2);
  EXPECT_NE(A, B);
  EXPECT_TRUE(A.isValid());
  EXPECT_FALSE(Symbol().isValid());
  EXPECT_EQ(T.text(A), "alpha");
  EXPECT_EQ(T.size(), 2u);
  // Embedded content is preserved byte-for-byte.
  Symbol W = T.intern("we ird\tname");
  EXPECT_EQ(T.text(W), "we ird\tname");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng A(12345), B(12345);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  Rng C(12346);
  bool Differs = false;
  for (int I = 0; I != 10; ++I)
    Differs |= A.next() != C.next();
  EXPECT_TRUE(Differs);
}

TEST(RngTest, BoundsRespected) {
  Rng R(7);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 3000; ++I) {
    uint64_t V = R.below(7);
    EXPECT_LT(V, 7u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 7u); // all residues hit

  for (int I = 0; I != 1000; ++I) {
    int64_t V = R.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    double U = R.unit();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
  EXPECT_TRUE(R.chance(1, 1));
  EXPECT_FALSE(R.chance(0, 5));
}

TEST(BudgetTest, StepBudgetExhausts) {
  Budget B(10, 1e9);
  for (int I = 0; I != 10; ++I)
    EXPECT_TRUE(B.step());
  EXPECT_FALSE(B.step());
  EXPECT_FALSE(B.step()); // stays exhausted
  EXPECT_TRUE(B.exhausted());
  EXPECT_EQ(B.steps(), 11u);
}

TEST(BudgetTest, DefaultIsUnlimitedEnough) {
  Budget B;
  for (int I = 0; I != 100000; ++I)
    ASSERT_TRUE(B.step());
  EXPECT_FALSE(B.exhausted());
}

TEST(FormatTest, Seconds) {
  EXPECT_EQ(formatSeconds(0.91), "0.91s");
  EXPECT_EQ(formatSeconds(20.4), "20.4s");
  EXPECT_EQ(formatSeconds(284.0), "4m44s");
  EXPECT_EQ(formatSeconds(60.0), "1m0s");
  EXPECT_EQ(formatSeconds(119.6), "2m0s"); // carries into the minute
}

TEST(FormatTest, Thousands) {
  EXPECT_EQ(Stats::formatThousands(0), "0");
  EXPECT_EQ(Stats::formatThousands(999), "999");
  EXPECT_EQ(Stats::formatThousands(6500), "6.5k");
  EXPECT_EQ(Stats::formatThousands(68500), "68.5k");
  EXPECT_EQ(Stats::formatThousands(319000), "319k");
  EXPECT_EQ(Stats::formatThousands(1357000), "1,357k");
}

TEST(StatsTest, CountersAccumulate) {
  Stats S;
  EXPECT_EQ(S.get("x"), 0u);
  ++S.counter("x");
  S.counter("x") += 4;
  EXPECT_EQ(S.get("x"), 5u);
  S.clear();
  EXPECT_EQ(S.get("x"), 0u);
}

} // namespace
