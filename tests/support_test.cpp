//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the support layer: symbol interning, the deterministic
/// PRNG, budgets, and the paper-style formatting helpers.
///
//===----------------------------------------------------------------------===//

#include "support/AtomicFile.h"
#include "support/Cancellation.h"
#include "support/FailPoint.h"
#include "support/Hashing.h"
#include "support/Rng.h"
#include "support/Stats.h"
#include "support/Symbol.h"
#include "support/ThreadPool.h"
#include "support/Timer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <set>
#include <string>
#include <stdexcept>
#include <thread>
#include <unordered_set>
#include <vector>

#include <unistd.h>

using namespace swift;

namespace {

TEST(SymbolTest, InterningIsStable) {
  SymbolTable T;
  Symbol A = T.intern("alpha");
  Symbol B = T.intern("beta");
  Symbol A2 = T.intern("alpha");
  EXPECT_EQ(A, A2);
  EXPECT_NE(A, B);
  EXPECT_TRUE(A.isValid());
  EXPECT_FALSE(Symbol().isValid());
  EXPECT_EQ(T.text(A), "alpha");
  EXPECT_EQ(T.size(), 2u);
  // Embedded content is preserved byte-for-byte.
  Symbol W = T.intern("we ird\tname");
  EXPECT_EQ(T.text(W), "we ird\tname");
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng A(12345), B(12345);
  for (int I = 0; I != 100; ++I)
    EXPECT_EQ(A.next(), B.next());
  Rng C(12346);
  bool Differs = false;
  for (int I = 0; I != 10; ++I)
    Differs |= A.next() != C.next();
  EXPECT_TRUE(Differs);
}

TEST(RngTest, BoundsRespected) {
  Rng R(7);
  std::set<uint64_t> Seen;
  for (int I = 0; I != 3000; ++I) {
    uint64_t V = R.below(7);
    EXPECT_LT(V, 7u);
    Seen.insert(V);
  }
  EXPECT_EQ(Seen.size(), 7u); // all residues hit

  for (int I = 0; I != 1000; ++I) {
    int64_t V = R.range(-3, 3);
    EXPECT_GE(V, -3);
    EXPECT_LE(V, 3);
    double U = R.unit();
    EXPECT_GE(U, 0.0);
    EXPECT_LT(U, 1.0);
  }
  EXPECT_TRUE(R.chance(1, 1));
  EXPECT_FALSE(R.chance(0, 5));
}

TEST(BudgetTest, StepBudgetExhausts) {
  Budget B(10, 1e9);
  for (int I = 0; I != 10; ++I)
    EXPECT_TRUE(B.step());
  EXPECT_FALSE(B.step());
  EXPECT_FALSE(B.step()); // stays exhausted
  EXPECT_TRUE(B.exhausted());
  EXPECT_EQ(B.steps(), 11u);
}

TEST(BudgetTest, DefaultIsUnlimitedEnough) {
  Budget B;
  for (int I = 0; I != 100000; ++I)
    ASSERT_TRUE(B.step());
  EXPECT_FALSE(B.exhausted());
}

TEST(FormatTest, Seconds) {
  EXPECT_EQ(formatSeconds(0.91), "0.91s");
  EXPECT_EQ(formatSeconds(20.4), "20.4s");
  EXPECT_EQ(formatSeconds(284.0), "4m44s");
  EXPECT_EQ(formatSeconds(60.0), "1m0s");
  EXPECT_EQ(formatSeconds(119.6), "2m0s"); // carries into the minute
}

// Regression: millis() used to compute seconds() * 1000.0 through a
// double, dropping ticks near millisecond boundaries and losing integer
// precision entirely for counts past 2^53 (a ~104-day steady_clock span
// is ~9e12 ms; the double detour already misrounds far smaller values).
TEST(TimerTest, MillisCountsWholeTicksExactly) {
  using std::chrono::milliseconds;
  using std::chrono::nanoseconds;
  EXPECT_EQ(Timer::millisFor(nanoseconds(0)), 0u);
  EXPECT_EQ(Timer::millisFor(nanoseconds(999'999)), 0u);
  EXPECT_EQ(Timer::millisFor(milliseconds(1)), 1u);
  EXPECT_EQ(Timer::millisFor(milliseconds(1) - nanoseconds(1)), 0u);
  EXPECT_EQ(Timer::millisFor(milliseconds(999) + nanoseconds(999'999)),
            999u);
  // 999,999,999,999,999,999 ns is 999,999,999,999 whole ms; the double
  // path rounds it to exactly 1e9 seconds (the true value sits within
  // half an ulp of it), overcounting by a full millisecond.
  EXPECT_EQ(Timer::millisFor(nanoseconds(999'999'999'999'999'999)),
            999'999'999'999u);
  // A live timer agrees with its own seconds() to within one tick.
  Timer T;
  uint64_t Ms = T.millis();
  double Secs = T.seconds();
  EXPECT_LE(Ms, uint64_t(Secs * 1000.0) + 1);
}

TEST(FormatTest, Thousands) {
  EXPECT_EQ(Stats::formatThousands(0), "0");
  EXPECT_EQ(Stats::formatThousands(999), "999");
  EXPECT_EQ(Stats::formatThousands(6500), "6.5k");
  EXPECT_EQ(Stats::formatThousands(68500), "68.5k");
  EXPECT_EQ(Stats::formatThousands(319000), "319k");
  EXPECT_EQ(Stats::formatThousands(1357000), "1,357k");
}

TEST(StatsTest, CountersAccumulate) {
  Stats S;
  EXPECT_EQ(S.get("x"), 0u);
  ++S.counter("x");
  S.counter("x") += 4;
  EXPECT_EQ(S.get("x"), 5u);
  S.clear();
  EXPECT_EQ(S.get("x"), 0u);
}

TEST(StatsTest, InternedHandlesWorkAcrossInstances) {
  // A handle interned once addresses the same counter in every Stats
  // instance — that is what lets per-worker Stats merge by index.
  Stats::Counter C = Stats::id("handle.test");
  EXPECT_EQ(Stats::id("handle.test"), C); // stable
  Stats A, B;
  A.counter(C) += 3;
  B.counter(C) += 4;
  B.counter("handle.other") += 2;
  EXPECT_EQ(A.get("handle.test"), 3u);
  A.merge(B);
  EXPECT_EQ(A.get("handle.test"), 7u);
  EXPECT_EQ(A.get("handle.other"), 2u);
  EXPECT_EQ(B.get("handle.test"), 4u); // merge does not disturb the source

  // all() reports only counters that fired.
  auto All = A.all();
  EXPECT_EQ(All.at("handle.test"), 7u);
  EXPECT_EQ(All.count("never.fired"), 0u);
}

TEST(StatsTest, DefaultHandleIsInvalidAndRealIdsStartAtOne) {
  // Id 0 is reserved: a default-constructed handle is invalid and distinct
  // from every interned one, so it can never silently address whichever
  // counter happened to be interned first.
  Stats::Counter Default;
  EXPECT_FALSE(Default.isValid());
  Stats::Counter C = Stats::id("handle.reserved-zero");
  EXPECT_TRUE(C.isValid());
  EXPECT_NE(C, Default);
  EXPECT_EQ(Stats::Counter(), Default);
}

#if !defined(NDEBUG) && GTEST_HAS_DEATH_TEST
TEST(StatsDeathTest, BumpingDefaultHandleAsserts) {
  Stats S;
  Stats::Counter Default;
  EXPECT_DEATH(++S.counter(Default), "default-constructed Counter");
}
#endif

TEST(HashingTest, CombineHasNoMassCollisionsPastTwentyBits) {
  // Regression for the old path-edge hash, which packed the three fields
  // with <<40 / <<20 shifts and so collided systematically once any field
  // passed 2^20. Distinct (node, entry, cur) triples drawn well past that
  // boundary must hash distinctly (a 64-bit mixer makes accidental
  // collisions in 50k samples essentially impossible).
  std::unordered_set<uint64_t> Seen;
  uint64_t N = 0;
  for (uint64_t A = 0; A != 37; ++A)
    for (uint64_t B = 0; B != 37; ++B)
      for (uint64_t C = 0; C != 37; ++C) {
        uint64_t Node = (A + 1) << 21, Entry = (B + 1) << 22,
                 Cur = (C + 1) << 23;
        Seen.insert(hashCombine(hashCombine(mix64(Node), Entry), Cur));
        ++N;
      }
  EXPECT_EQ(Seen.size(), N);
}

TEST(ThreadPoolTest, TasksCanSubmitTasksAndWaitDrains) {
  ThreadPool Pool(4);
  EXPECT_EQ(Pool.size(), 4u);
  std::atomic<int> Count{0};
  for (int I = 0; I != 8; ++I)
    Pool.submit([&Pool, &Count] {
      ++Count;
      Pool.submit([&Count] { ++Count; });
    });
  Pool.wait(); // must cover the tasks submitted by running tasks
  EXPECT_EQ(Count.load(), 16);
  // The pool stays usable after a wait.
  Pool.submit([&Count] { ++Count; });
  Pool.wait();
  EXPECT_EQ(Count.load(), 17);
}

TEST(ThreadPoolTest, ThrowingTaskRethrowsFromWaitWithoutDeadlock) {
  ThreadPool Pool(4);
  std::atomic<int> Ran{0};
  for (int I = 0; I != 16; ++I)
    Pool.submit([&Ran, I] {
      ++Ran;
      if (I == 5)
        throw std::runtime_error("task blew up");
    });
  // wait() must drain every task (no deadlock waiting on Pending) and
  // rethrow the first captured exception exactly once.
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  EXPECT_EQ(Ran.load(), 16);
  // The error was consumed; the pool stays usable and a clean round does
  // not rethrow the stale exception.
  Pool.submit([&Ran] { ++Ran; });
  EXPECT_NO_THROW(Pool.wait());
  EXPECT_EQ(Ran.load(), 17);
}

TEST(ThreadPoolTest, ThrowingTasksDoNotDeadlockSubmittingPeers) {
  // Tasks that submit further tasks while another task throws: wait()
  // still drains everything and reports one of the errors.
  ThreadPool Pool(2);
  std::atomic<int> Count{0};
  for (int I = 0; I != 8; ++I)
    Pool.submit([&Pool, &Count] {
      Pool.submit([&Count] { ++Count; });
      throw std::runtime_error("parent failed");
    });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  EXPECT_EQ(Count.load(), 8); // children still ran
}

TEST(ThreadPoolTest, CancelledPoolDropsTaskBodiesButStillDrains) {
  CancelToken Cancel;
  Cancel.request();
  ThreadPool Pool(4, &Cancel);
  std::atomic<int> Ran{0};
  for (int I = 0; I != 32; ++I)
    Pool.submit([&Ran] { ++Ran; });
  Pool.wait(); // skipped bodies still decrement Pending; no deadlock
  EXPECT_EQ(Ran.load(), 0);
}

TEST(ThreadPoolTest, CancellationMidRunStopsNewBodies) {
  CancelToken Cancel;
  ThreadPool Pool(2, &Cancel);
  std::atomic<int> Ran{0};
  Pool.submit([&Cancel] { Cancel.request(); });
  Pool.wait();
  for (int I = 0; I != 16; ++I)
    Pool.submit([&Ran] { ++Ran; });
  Pool.wait();
  EXPECT_EQ(Ran.load(), 0); // everything after the request is dropped
}

TEST(CancelTokenTest, RequestIsSticky) {
  CancelToken C;
  EXPECT_FALSE(C.requested());
  C.request();
  EXPECT_TRUE(C.requested());
  C.request(); // idempotent
  EXPECT_TRUE(C.requested());
}

TEST(BudgetTest, ConcurrentSteppingRespectsCap) {
  constexpr uint64_t Cap = 10'000;
  constexpr unsigned NumThreads = 4;
  Budget B(Cap, 1e9);
  std::atomic<uint64_t> Accepted{0};
  std::vector<std::thread> Ts;
  for (unsigned I = 0; I != NumThreads; ++I)
    Ts.emplace_back([&B, &Accepted] {
      uint64_t Mine = 0;
      while (B.step())
        ++Mine;
      Accepted += Mine;
    });
  for (std::thread &T : Ts)
    T.join();
  EXPECT_TRUE(B.exhausted());
  // Relaxed atomics may overshoot by at most one step per racing thread.
  EXPECT_GE(Accepted.load(), Cap - NumThreads);
  EXPECT_LE(Accepted.load(), Cap + NumThreads);
}

//===----------------------------------------------------------------------===//
// Failpoints
//===----------------------------------------------------------------------===//

TEST(FailPointTest, DisarmedIsInertAndCountsNothing) {
  failpoint::disarmAll();
  EXPECT_FALSE(failpoint::armed());
  EXPECT_FALSE(SWIFT_FAILPOINT("never.armed"));
  EXPECT_EQ(failpoint::hits("never.armed"), 0u);
  EXPECT_TRUE(failpoint::armedNames().empty());
}

TEST(FailPointTest, NthFiresExactlyOnce) {
  failpoint::ScopedArm Arm("fp.test.nth=nth(3)");
  std::vector<bool> Fired;
  for (int I = 0; I != 6; ++I)
    Fired.push_back(SWIFT_FAILPOINT("fp.test.nth"));
  EXPECT_EQ(Fired, (std::vector<bool>{false, false, true, false, false,
                                      false}));
  EXPECT_EQ(failpoint::hits("fp.test.nth"), 6u);
  EXPECT_EQ(failpoint::fires("fp.test.nth"), 1u);
}

TEST(FailPointTest, EveryNthRepeats) {
  failpoint::ScopedArm Arm("fp.test.every=every(2)");
  int Fires = 0;
  for (int I = 0; I != 10; ++I)
    Fires += SWIFT_FAILPOINT("fp.test.every");
  EXPECT_EQ(Fires, 5);
  EXPECT_EQ(failpoint::fires("fp.test.every"), 5u);
}

TEST(FailPointTest, ProbIsSeededAndDeterministic) {
  std::vector<bool> First, Second;
  {
    failpoint::ScopedArm Arm("fp.test.prob=prob(0.5,42)");
    for (int I = 0; I != 64; ++I)
      First.push_back(SWIFT_FAILPOINT("fp.test.prob"));
  }
  {
    failpoint::ScopedArm Arm("fp.test.prob=prob(0.5,42)");
    for (int I = 0; I != 64; ++I)
      Second.push_back(SWIFT_FAILPOINT("fp.test.prob"));
  }
  EXPECT_EQ(First, Second); // same seed, same sequence
  int Fires = static_cast<int>(std::count(First.begin(), First.end(), true));
  EXPECT_GT(Fires, 10); // p=.5 over 64 draws: wildly improbable to miss
  EXPECT_LT(Fires, 54);
}

TEST(FailPointTest, SpecParsingMergesAndRejects) {
  failpoint::ScopedArm Arm("a.b=nth(1);c.d=always");
  std::vector<std::string> Names = failpoint::armedNames();
  EXPECT_EQ(Names, (std::vector<std::string>{"a.b", "c.d"}));

  // A malformed entry anywhere arms nothing new.
  EXPECT_THROW(failpoint::armSpec("e.f=nth(1);oops"), std::runtime_error);
  EXPECT_THROW(failpoint::armSpec("=nth(1)"), std::runtime_error);
  EXPECT_THROW(failpoint::armSpec("x=nth(zero)"), std::runtime_error);
  EXPECT_THROW(failpoint::armSpec("x=prob(1.5,1)"), std::runtime_error);
  EXPECT_THROW(failpoint::armSpec("x=sometimes"), std::runtime_error);
  EXPECT_EQ(failpoint::armedNames().size(), 2u);
}

TEST(FailPointTest, DuplicateNameWithinOneSpecIsRejected) {
  failpoint::disarmAll();
  // Last-wins used to silently drop the first trigger; now the whole
  // spec is rejected and nothing is armed.
  try {
    failpoint::armSpec("x.y=nth(1);x.y=every(2)");
    FAIL() << "duplicate name accepted";
  } catch (const std::runtime_error &E) {
    EXPECT_NE(std::string(E.what()).find("duplicate failpoint 'x.y'"),
              std::string::npos)
        << E.what();
  }
  EXPECT_TRUE(failpoint::armedNames().empty());

  // Re-arming the same name across *separate* specs is still the
  // documented replace-and-reset merge.
  failpoint::ScopedArm Arm("x.y=nth(2)");
  failpoint::armSpec("x.y=nth(1)");
  EXPECT_TRUE(SWIFT_FAILPOINT("x.y"));
}

//===----------------------------------------------------------------------===//
// Atomic file writes
//===----------------------------------------------------------------------===//

TEST(AtomicFileTest, RoundTripAndTypedReadError) {
  namespace fs = std::filesystem;
  fs::path Base = fs::temp_directory_path() /
                  ("swift-atomicfile-rt-" + std::to_string(::getpid()));
  fs::remove_all(Base);
  ASSERT_TRUE(fs::create_directories(Base));
  std::string Target = (Base / "data.bin").string();
  writeFileAtomic(Target, "first", "fp.test.atomic");
  writeFileAtomic(Target, "second", "fp.test.atomic");
  EXPECT_EQ(readWholeFile(Target), "second");
  try {
    readWholeFile((Base / "missing").string());
    FAIL() << "read of a missing file succeeded";
  } catch (const IoError &E) {
    EXPECT_EQ(E.op(), "open");
    EXPECT_EQ(E.path(), (Base / "missing").string());
  }
  fs::remove_all(Base);
}

std::string DoomedDir; // removed by the pre-rename hook below
void removeDoomedDir() { std::filesystem::remove_all(DoomedDir); }

TEST(AtomicFileTest, VanishingDestinationDirThrowsTypedIoError) {
  namespace fs = std::filesystem;
  fs::path Base = fs::temp_directory_path() /
                  ("swift-atomicfile-vanish-" + std::to_string(::getpid()));
  fs::remove_all(Base);
  ASSERT_TRUE(fs::create_directories(Base));
  std::string Target = (Base / "out.bin").string();

  // Simulate a concurrent actor deleting the destination directory in the
  // window between the fsynced temp write and the rename.
  DoomedDir = Base.string();
  atomicfile_detail::PreRenameTestHook = &removeDoomedDir;
  bool Threw = false;
  try {
    writeFileAtomic(Target, "payload", "fp.test.atomic");
  } catch (const IoError &E) {
    Threw = true;
    EXPECT_EQ(E.path(), Target);
    // First attempt dies at the rename; the bounded retries then fail to
    // reopen the temp file inside the vanished directory.
    EXPECT_TRUE(E.op() == "rename" || E.op() == "open") << E.op();
    EXPECT_NE(std::string(E.what()).find(Target), std::string::npos)
        << E.what();
  }
  atomicfile_detail::PreRenameTestHook = nullptr;
  EXPECT_TRUE(Threw);

  // No crash, and nothing recreated the directory or leaked a .tmp file
  // into a resurrected path.
  EXPECT_FALSE(fs::exists(Base));
}

TEST(ThreadPoolTest, WorkerStartupFaultDoesNotLeakThreads) {
  // The second worker's constructor throws; the pool must join the first
  // worker and surface an ordinary exception (not std::terminate).
  failpoint::ScopedArm Arm("pool.worker.start=nth(2)");
  EXPECT_THROW(ThreadPool(4), std::runtime_error);
}

TEST(ThreadPoolTest, InjectedTaskFaultSurfacesViaWait) {
  failpoint::ScopedArm Arm("pool.task=nth(2)");
  ThreadPool Pool(2);
  std::atomic<int> Ran{0};
  for (int I = 0; I != 8; ++I)
    Pool.submit([&Ran] { ++Ran; });
  EXPECT_THROW(Pool.wait(), std::runtime_error);
  // Exactly one task body was replaced by the injected fault; the queue
  // still drained completely.
  EXPECT_EQ(Ran.load(), 7);
  Pool.submit([&Ran] { ++Ran; }); // the pool stays usable afterwards
  Pool.wait();
  EXPECT_EQ(Ran.load(), 8);
}

} // namespace
