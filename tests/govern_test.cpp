//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the resource governor and the governed typestate runs: the
/// pressure latch, the memory-cap trip wire, partial-result soundness
/// (budget-exhausted verdicts are a subset of the full run's), determinism
/// of governed sync runs across thread counts, the Yellow/Red degradation
/// ladder, budget phase attribution, and checkpoint/resume — including the
/// bit-identity guarantee for pure top-down runs.
///
//===----------------------------------------------------------------------===//

#include "framework/Tabulation.h"
#include "genprog/Fuzzer.h"
#include "govern/Checkpoint.h"
#include "govern/Governor.h"
#include "support/FailPoint.h"
#include "typestate/Runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

using namespace swift;

namespace {

//===----------------------------------------------------------------------===//
// Governor unit tests
//===----------------------------------------------------------------------===//

TEST(GovernorTest, PressureLatchesUpwardOnly) {
  GovernorLimits L;
  L.MaxSteps = 100;
  L.YellowAt = 0.5;
  L.RedAt = 0.9;
  ResourceGovernor Gov(L);
  EXPECT_EQ(Gov.level(), Pressure::Green);

  for (int I = 0; I != 55; ++I)
    Gov.budget().step();
  Gov.recompute();
  EXPECT_EQ(Gov.level(), Pressure::Yellow);
  EXPECT_FALSE(Gov.cancelToken().requested());

  for (int I = 0; I != 40; ++I)
    Gov.budget().step();
  Gov.recompute();
  EXPECT_EQ(Gov.level(), Pressure::Red);
  EXPECT_TRUE(Gov.cancelToken().requested());

  // The latch: recomputing with the same (high) fraction, or any later
  // recompute, never lowers the level.
  Gov.recompute();
  EXPECT_EQ(Gov.level(), Pressure::Red);
}

TEST(GovernorTest, FirstPollRecomputes) {
  // poll() is throttled but must do real work on the very first call so
  // YellowAt = 0 test hooks take effect before any degradation decision.
  GovernorLimits L;
  L.MaxSteps = 100;
  L.YellowAt = 0.0;
  ResourceGovernor Gov(L);
  EXPECT_EQ(Gov.poll(), Pressure::Yellow);
}

TEST(GovernorTest, MemoryCapTripsBudgetAndCancellation) {
  GovernorLimits L;
  L.MaxMemoryBytes = 1000;
  ResourceGovernor Gov(L);
  Gov.charge(400);
  Gov.release(100);
  EXPECT_EQ(Gov.memoryBytes(), 300u);
  EXPECT_EQ(Gov.peakMemoryBytes(), 400u);
  EXPECT_FALSE(Gov.budget().exhausted());

  Gov.charge(800); // 1100 > cap: hard stop
  EXPECT_TRUE(Gov.budget().exhausted());
  EXPECT_EQ(Gov.level(), Pressure::Red);
  EXPECT_TRUE(Gov.cancelToken().requested());
  EXPECT_EQ(Gov.peakMemoryBytes(), 1100u);
}

TEST(GovernorTest, UnlimitedDimensionsDoNotContribute) {
  ResourceGovernor Gov(GovernorLimits{}); // everything unlimited
  for (int I = 0; I != 1000; ++I)
    Gov.budget().step();
  Gov.charge(1u << 30);
  Gov.recompute();
  EXPECT_EQ(Gov.level(), Pressure::Green);
  EXPECT_EQ(Gov.fraction(), 0.0);
}

//===----------------------------------------------------------------------===//
// Governed runs: completeness, partial soundness, determinism
//===----------------------------------------------------------------------===//

FuzzConfig fuzzCfg(uint64_t Seed) {
  FuzzConfig FC;
  FC.Seed = Seed;
  FC.NumProcs = 3 + Seed % 4;
  FC.StmtsPerProc = 8 + Seed % 8;
  return FC;
}

GovernedRunOptions tdOptions(uint64_t MaxSteps = UINT64_MAX) {
  GovernedRunOptions GO;
  GO.Config.K = NoBuTrigger;
  GO.Config.Theta = 1;
  GO.Limits.MaxSteps = MaxSteps;
  return GO;
}

TEST(GovernedRunTest, UnlimitedGovernedTdMatchesPlainTd) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    std::unique_ptr<Program> Prog = generateFuzzProgram(fuzzCfg(Seed));
    TsContext Ctx(*Prog, Prog->spec(0).name());
    TsRunResult Td = runTypestateTd(Ctx);
    TsGovernedResult G = runTypestateGoverned(Ctx, tdOptions());

    EXPECT_FALSE(G.Partial) << "seed " << Seed;
    EXPECT_EQ(G.Peak, Pressure::Green);
    EXPECT_EQ(G.Run.ErrorSites, Td.ErrorSites) << "seed " << Seed;
    EXPECT_EQ(G.Run.ErrorPoints, Td.ErrorPoints) << "seed " << Seed;
    EXPECT_EQ(G.Run.MainExit, Td.MainExit) << "seed " << Seed;
    EXPECT_EQ(G.Run.TdSummaries, Td.TdSummaries) << "seed " << Seed;
    EXPECT_EQ(G.Run.Steps, Td.Steps) << "seed " << Seed;
    // Complete runs resolve everything.
    for (TsVerdict V : G.Verdicts)
      EXPECT_NE(V, TsVerdict::Unresolved);
  }
}

TEST(GovernedRunTest, PartialVerdictsAreSoundSubset) {
  for (uint64_t Seed = 1; Seed <= 12; ++Seed) {
    std::unique_ptr<Program> Prog = generateFuzzProgram(fuzzCfg(Seed));
    TsContext Ctx(*Prog, Prog->spec(0).name());
    TsRunResult Td = runTypestateTd(Ctx);
    ASSERT_FALSE(Td.Timeout);

    for (uint64_t MaxSteps : {uint64_t(50), uint64_t(200), uint64_t(1000)}) {
      TsGovernedResult G = runTypestateGoverned(Ctx, tdOptions(MaxSteps));
      // Tabulation only accumulates: a truncated run's error sites are a
      // subset of the full run's.
      for (SiteId S : G.Run.ErrorSites)
        EXPECT_TRUE(Td.ErrorSites.count(S))
            << "seed " << Seed << " budget " << MaxSteps
            << ": partial run reported error @" << S
            << " that the full run does not";
      for (uint32_t S = 0; S != Prog->numSites(); ++S) {
        TsVerdict V = G.Verdicts[S];
        if (V == TsVerdict::ErrorReported) {
          EXPECT_TRUE(Td.ErrorSites.count(S)) << "seed " << Seed;
        }
        // A partial run must never claim Proved for a tracked site.
        if (G.Partial && Ctx.isTrackedSite(S)) {
          EXPECT_NE(V, TsVerdict::Proved)
              << "seed " << Seed << " budget " << MaxSteps << " site " << S;
        }
      }
      if (!G.Partial) {
        EXPECT_EQ(G.Run.ErrorSites, Td.ErrorSites) << "seed " << Seed;
        EXPECT_EQ(G.Run.MainExit, Td.MainExit) << "seed " << Seed;
      }
    }
  }
}

TEST(GovernedRunTest, PartialResultsDeterministicAcrossThreadCounts) {
  // With step-only limits, governed synchronous runs are reproducible at
  // any thread count: the pressure ladder is a pure function of the
  // deterministic step count.
  for (uint64_t Seed : {2u, 5u, 9u}) {
    std::unique_ptr<Program> Prog = generateFuzzProgram(fuzzCfg(Seed));
    TsContext Ctx(*Prog, Prog->spec(0).name());

    for (uint64_t MaxSteps : {uint64_t(200), uint64_t(2000)}) {
      TsGovernedResult Base;
      bool First = true;
      for (unsigned Threads : {1u, 2u, 4u}) {
        GovernedRunOptions GO;
        GO.Config.K = 1;
        GO.Config.Theta = 2;
        GO.Config.Threads = Threads;
        GO.Limits.MaxSteps = MaxSteps;
        TsGovernedResult G = runTypestateGoverned(Ctx, GO);
        if (First) {
          Base = std::move(G);
          First = false;
          continue;
        }
        EXPECT_EQ(G.Partial, Base.Partial) << "seed " << Seed;
        EXPECT_EQ(G.Run.Steps, Base.Run.Steps) << "seed " << Seed;
        EXPECT_EQ(G.Run.ErrorSites, Base.Run.ErrorSites) << "seed " << Seed;
        EXPECT_EQ(G.Run.MainExit, Base.Run.MainExit) << "seed " << Seed;
        EXPECT_EQ(G.Verdicts, Base.Verdicts) << "seed " << Seed;
      }
    }
  }
}

//===----------------------------------------------------------------------===//
// Degradation ladder and budget attribution
//===----------------------------------------------------------------------===//

TEST(DegradeTest, YellowShrinksThetaButKeepsResults) {
  uint64_t TotalShrunk = 0, TotalAttempts = 0;
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    std::unique_ptr<Program> Prog = generateFuzzProgram(fuzzCfg(Seed));
    TsContext Ctx(*Prog, Prog->spec(0).name());
    TsRunResult Td = runTypestateTd(Ctx);

    GovernedRunOptions GO;
    GO.Config.K = 0; // trigger immediately
    GO.Config.Theta = 4;
    GO.Limits.MaxSteps = 1u << 30; // limited dimension so fractions exist
    GO.Limits.YellowAt = 0.0;      // degraded from the first poll
    TsGovernedResult G = runTypestateGoverned(Ctx, GO);

    ASSERT_FALSE(G.Partial);
    EXPECT_TRUE(pressureAtLeast(G.Peak, Pressure::Yellow));
    // Theta halving is sound: results still coincide with TD.
    EXPECT_EQ(G.Run.ErrorSites, Td.ErrorSites) << "seed " << Seed;
    EXPECT_EQ(G.Run.MainExit, Td.MainExit) << "seed " << Seed;
    TotalShrunk += G.Run.Stat.get("gov.theta_shrunk");
    TotalAttempts += G.Run.Stat.get("swift.bu_triggers") +
                     G.Run.Stat.get("swift.bu_postponed");
  }
  // Every trigger attempt under Yellow passes the theta-shrink point
  // first, so attempts imply shrinks (some seed certainly triggers).
  ASSERT_GT(TotalAttempts, 0u);
  EXPECT_GT(TotalShrunk, 0u);
}

TEST(DegradeTest, RedSuppressesBottomUpEntirely) {
  uint64_t TotalSuppressed = 0;
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    std::unique_ptr<Program> Prog = generateFuzzProgram(fuzzCfg(Seed));
    TsContext Ctx(*Prog, Prog->spec(0).name());
    TsRunResult Td = runTypestateTd(Ctx);

    GovernedRunOptions GO;
    GO.Config.K = 0;
    GO.Config.Theta = 2;
    GO.Limits.MaxSteps = 1u << 30;
    GO.Limits.YellowAt = 0.0;
    GO.Limits.RedAt = 0.0;
    TsGovernedResult G = runTypestateGoverned(Ctx, GO);

    ASSERT_FALSE(G.Partial);
    EXPECT_EQ(G.Peak, Pressure::Red);
    // Under Red no bottom-up analysis runs: the hybrid behaves as pure TD.
    EXPECT_EQ(G.Run.ErrorSites, Td.ErrorSites) << "seed " << Seed;
    EXPECT_EQ(G.Run.ErrorPoints, Td.ErrorPoints) << "seed " << Seed;
    EXPECT_EQ(G.Run.MainExit, Td.MainExit) << "seed " << Seed;
    EXPECT_EQ(G.Run.BuRelations, 0u) << "seed " << Seed;
    EXPECT_EQ(G.Run.Stat.get("budget.sync_bu_steps"), 0u);
    TotalSuppressed += G.Run.Stat.get("gov.bu_suppressed");
  }
  EXPECT_GT(TotalSuppressed, 0u); // some seed certainly triggers
}

TEST(GovernedRunTest, BudgetPhaseAttributionAddsUp) {
  std::unique_ptr<Program> Prog = generateFuzzProgram(fuzzCfg(3));
  TsContext Ctx(*Prog, Prog->spec(0).name());

  GovernedRunOptions GO;
  GO.Config.K = 1;
  GO.Config.Theta = 2;
  TsGovernedResult G = runTypestateGoverned(Ctx, GO);
  ASSERT_FALSE(G.Partial);

  uint64_t TdSteps = G.Run.Stat.get("budget.td_steps");
  uint64_t SyncBu = G.Run.Stat.get("budget.sync_bu_steps");
  uint64_t AsyncBu = G.Run.Stat.get("budget.async_bu_steps");
  EXPECT_GT(TdSteps, 0u);
  if (G.Run.Stat.get("swift.bu_triggers") > 0) {
    EXPECT_GT(SyncBu, 0u);
  }
  EXPECT_EQ(AsyncBu, 0u); // sync run
  // Every step the budget accepted is attributed to exactly one phase.
  EXPECT_EQ(TdSteps + SyncBu + AsyncBu, G.Run.Steps);
}

TEST(GovernedRunTest, CancelledAsyncBuAttributesToGovNotBudget) {
  // An asynchronous bottom-up run cancelled mid-flight (Red latch or
  // budget exhaustion) installs nothing, so its partial steps are shed
  // work: they must land in gov.cancelled_bu_steps, not in
  // budget.async_bu_steps. (They used to be attributed to the productive
  // async phase, overstating it by the shed amount.) The partition
  // invariants below hold for every governed run, cancelled or not.
  uint64_t TotalCancelled = 0;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    std::unique_ptr<Program> Prog = generateFuzzProgram(fuzzCfg(Seed));
    TsContext Ctx(*Prog, Prog->spec(0).name());
    for (uint64_t MaxSteps :
         {uint64_t(40), uint64_t(120), uint64_t(400), uint64_t(1u << 30)}) {
      GovernedRunOptions GO;
      GO.Config.K = 0; // trigger bottom-up immediately
      GO.Config.Theta = 2;
      GO.Config.AsyncBu = true;
      GO.Limits.MaxSteps = MaxSteps;
      TsGovernedResult G = runTypestateGoverned(Ctx, GO);

      uint64_t TdSteps = G.Run.Stat.get("budget.td_steps");
      uint64_t SyncBu = G.Run.Stat.get("budget.sync_bu_steps");
      uint64_t AsyncBu = G.Run.Stat.get("budget.async_bu_steps");
      uint64_t Shed = G.Run.Stat.get("gov.cancelled_bu_steps");
      uint64_t Cancelled = G.Run.Stat.get("gov.bu_cancelled");
      // Every budget-accepted step lands in exactly one bucket. When the
      // budget ran out mid-run — the run went partial, or an async job
      // was cancelled — Budget::steps() additionally counts the rejected
      // step of each thread that observed exhaustion (at most the TD
      // loop plus each in-flight async worker, per the Budget overshoot
      // contract).
      uint64_t Attributed = TdSteps + SyncBu + AsyncBu + Shed;
      EXPECT_LE(Attributed, G.Run.Steps)
          << "seed " << Seed << " budget " << MaxSteps;
      EXPECT_LE(G.Run.Steps - Attributed, 3u) // TD + MaxAsyncJobs (2)
          << "seed " << Seed << " budget " << MaxSteps;
      if (!G.Partial && Cancelled == 0) {
        EXPECT_EQ(Attributed, G.Run.Steps)
            << "seed " << Seed << " budget " << MaxSteps;
      }
      // The raw bottom-up step count partitions into productive + shed.
      EXPECT_EQ(SyncBu + AsyncBu + Shed, G.Run.Stat.get("bu.steps"))
          << "seed " << Seed << " budget " << MaxSteps;
      // The async config never runs a synchronous bottom-up phase.
      EXPECT_EQ(SyncBu, 0u) << "seed " << Seed << " budget " << MaxSteps;
      // Productive async steps imply an installed run (and a trigger).
      if (G.Run.Stat.get("swift.bu_triggers") == 0) {
        EXPECT_EQ(AsyncBu, 0u) << "seed " << Seed << " budget " << MaxSteps;
      }
      // Shed steps only exist when some run was actually cancelled.
      if (Cancelled == 0) {
        EXPECT_EQ(Shed, 0u) << "seed " << Seed << " budget " << MaxSteps;
      }
      TotalCancelled += Cancelled;
    }
  }
  // Tiny budgets with an immediate trigger: across the sweep, some run
  // certainly had an async job in flight when the budget ran out.
  EXPECT_GT(TotalCancelled, 0u);
}

//===----------------------------------------------------------------------===//
// Checkpoint/resume
//===----------------------------------------------------------------------===//

TEST(CheckpointTest, TextRoundTripIsExact) {
  int RoundTrips = 0;
  for (uint64_t Seed : {1u, 4u, 7u}) {
    std::unique_ptr<Program> Prog = generateFuzzProgram(fuzzCfg(Seed));
    TsContext Ctx(*Prog, Prog->spec(0).name());
    TsRunResult Td = runTypestateTd(Ctx);

    GovernedRunOptions GO = tdOptions(std::max<uint64_t>(5, Td.Steps / 2));
    TsTabSnapshot Snap;
    GO.CheckpointOut = &Snap;
    TsGovernedResult G = runTypestateGoverned(Ctx, GO);
    if (!G.Partial)
      continue; // tiny program finished anyway
    ++RoundTrips;

    TsCheckpoint C;
    C.Config = GO.Config;
    C.TrackedClass = Prog->symbols().text(Prog->spec(0).name());
    C.StepsConsumed = Snap.StepsConsumed;
    C.Snapshot = Snap;

    std::string Text = checkpointToText(*Prog, C);
    ParsedCheckpoint PC = parseCheckpointText(Text);
    EXPECT_EQ(PC.Checkpoint.TrackedClass, C.TrackedClass);
    EXPECT_EQ(PC.Checkpoint.StepsConsumed, C.StepsConsumed);
    EXPECT_EQ(PC.Checkpoint.Config.K, C.Config.K);
    EXPECT_EQ(PC.Checkpoint.Config.Theta, C.Config.Theta);
    // print(parse(print(x))) == print(x): the parse lost nothing.
    EXPECT_EQ(checkpointToText(*PC.Prog, PC.Checkpoint), Text)
        << "seed " << Seed;
  }
  EXPECT_GT(RoundTrips, 0); // some seed certainly needs more than half
}

TEST(CheckpointTest, MalformedTextIsRejected) {
  EXPECT_THROW(parseCheckpointText("not a checkpoint"),
               std::runtime_error);
  EXPECT_THROW(parseCheckpointText("swift-ckpt v1\n"), std::runtime_error);
}

TEST(CheckpointTest, TdResumeIsBitIdenticalToUninterrupted) {
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    std::unique_ptr<Program> Prog = generateFuzzProgram(fuzzCfg(Seed));
    TsContext Ctx(*Prog, Prog->spec(0).name());
    TsRunResult Td = runTypestateTd(Ctx);
    ASSERT_FALSE(Td.Timeout);

    // Interrupt at roughly half the steps; round-trip the checkpoint
    // through text (as a real save/load would); resume unlimited.
    GovernedRunOptions GO = tdOptions(std::max<uint64_t>(10, Td.Steps / 2));
    TsTabSnapshot Snap;
    GO.CheckpointOut = &Snap;
    TsGovernedResult Cut = runTypestateGoverned(Ctx, GO);
    if (!Cut.Partial)
      continue; // tiny program finished anyway; nothing to resume

    TsCheckpoint C;
    C.Config = GO.Config;
    C.TrackedClass = Prog->symbols().text(Prog->spec(0).name());
    C.StepsConsumed = Snap.StepsConsumed;
    C.Snapshot = std::move(Snap);
    ParsedCheckpoint PC = parseCheckpointText(checkpointToText(*Prog, C));

    TsContext ResumedCtx(
        *PC.Prog,
        PC.Prog->symbols().intern(PC.Checkpoint.TrackedClass));
    GovernedRunOptions RO;
    RO.Config = PC.Checkpoint.Config;
    RO.ResumeFrom = &PC.Checkpoint.Snapshot;
    TsGovernedResult Resumed = runTypestateGoverned(ResumedCtx, RO);

    ASSERT_FALSE(Resumed.Partial) << "seed " << Seed;
    EXPECT_EQ(Resumed.Run.ErrorSites, Td.ErrorSites) << "seed " << Seed;
    EXPECT_EQ(Resumed.Run.ErrorPoints, Td.ErrorPoints) << "seed " << Seed;
    EXPECT_EQ(Resumed.Run.MainExit, Td.MainExit) << "seed " << Seed;
    EXPECT_EQ(Resumed.Run.TdSummaries, Td.TdSummaries) << "seed " << Seed;
    EXPECT_EQ(Resumed.Run.TdSummariesPerProc, Td.TdSummariesPerProc)
        << "seed " << Seed;
    EXPECT_EQ(Resumed.Run.BuRelations, 0u);
  }
}

TEST(CheckpointTest, HybridResumeCoincidesWithTd) {
  // Hybrid checkpoints drop bottom-up caches (re-derivable, and Sigma
  // makes skipping them sound), so the resumed run coincides with TD on
  // observable results rather than being bit-identical in summary counts.
  for (uint64_t Seed = 1; Seed <= 6; ++Seed) {
    std::unique_ptr<Program> Prog = generateFuzzProgram(fuzzCfg(Seed));
    TsContext Ctx(*Prog, Prog->spec(0).name());
    TsRunResult Td = runTypestateTd(Ctx);
    ASSERT_FALSE(Td.Timeout);

    GovernedRunOptions GO;
    GO.Config.K = 1;
    GO.Config.Theta = 1;
    GO.Limits.MaxSteps = std::max<uint64_t>(10, Td.Steps / 2);
    TsTabSnapshot Snap;
    GO.CheckpointOut = &Snap;
    TsGovernedResult Cut = runTypestateGoverned(Ctx, GO);
    if (!Cut.Partial)
      continue;

    TsCheckpoint C;
    C.Config = GO.Config;
    C.TrackedClass = Prog->symbols().text(Prog->spec(0).name());
    C.Snapshot = std::move(Snap);
    ParsedCheckpoint PC = parseCheckpointText(checkpointToText(*Prog, C));

    TsContext ResumedCtx(
        *PC.Prog,
        PC.Prog->symbols().intern(PC.Checkpoint.TrackedClass));
    GovernedRunOptions RO;
    RO.Config = PC.Checkpoint.Config;
    RO.ResumeFrom = &PC.Checkpoint.Snapshot;
    TsGovernedResult Resumed = runTypestateGoverned(ResumedCtx, RO);

    ASSERT_FALSE(Resumed.Partial) << "seed " << Seed;
    EXPECT_EQ(Resumed.Run.ErrorSites, Td.ErrorSites) << "seed " << Seed;
    EXPECT_EQ(Resumed.Run.MainExit, Td.MainExit) << "seed " << Seed;
  }
}

//===----------------------------------------------------------------------===//
// Fault injection: gov.tick simulates a sudden resource exhaustion
//===----------------------------------------------------------------------===//

TEST(GovernorTest, GovTickFailpointExhaustsAndLatchesRed) {
  failpoint::ScopedArm Arm("gov.tick=nth(2)");
  ResourceGovernor Gov(GovernorLimits{}); // everything unlimited
  Gov.recompute();                        // hit 1: no fire
  EXPECT_EQ(Gov.level(), Pressure::Green);
  EXPECT_FALSE(Gov.budget().exhausted());
  Gov.recompute(); // hit 2: injected exhaustion
  EXPECT_TRUE(Gov.budget().exhausted());
  EXPECT_EQ(Gov.level(), Pressure::Red);
  EXPECT_TRUE(Gov.cancelToken().requested());
  EXPECT_EQ(Gov.fraction(), 1.0);
}

TEST(GovernedRunTest, GovTickInjectionYieldsPartialButSoundResult) {
  // An unlimited-budget run hit by an injected exhaustion behaves exactly
  // like a genuine budget run-out: partial, and a sound subset.
  for (uint64_t Seed : {1u, 3u, 5u}) {
    std::unique_ptr<Program> Prog = generateFuzzProgram(fuzzCfg(Seed));
    TsContext Ctx(*Prog, Prog->spec(0).name());
    TsRunResult Td = runTypestateTd(Ctx);
    ASSERT_FALSE(Td.Timeout);

    // nth(1) fires at the solver's first governor poll — the only
    // recompute a short run is guaranteed to reach before finishing.
    failpoint::ScopedArm Arm("gov.tick=nth(1)");
    TsGovernedResult G = runTypestateGoverned(Ctx, tdOptions());
    EXPECT_TRUE(G.Partial) << "seed " << Seed;
    EXPECT_EQ(G.Peak, Pressure::Red);
    for (SiteId S : G.Run.ErrorSites)
      EXPECT_TRUE(Td.ErrorSites.count(S))
          << "seed " << Seed << ": injected-exhaustion run reported error @"
          << S << " that the full run does not";
    for (uint32_t S = 0; S != Prog->numSites(); ++S) {
      if (Ctx.isTrackedSite(S)) {
        EXPECT_NE(G.Verdicts[S], TsVerdict::Proved) << "seed " << Seed;
      }
    }
  }
}

} // namespace
