//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The per-client oracle campaigns and the client reproducer corpus.
/// Each registered domain runs a 40-seed fuzz campaign through the full
/// config matrix (soundness against its concrete witness, TD coincidence
/// for SWIFT at (k, theta) x threads {1,2,4}, BU agreement, thread
/// determinism) expecting zero violations; the checked-in corpus under
/// tests/corpus/clients/ must stay clean on the fixed analyses and must
/// still trip the oracle when its recorded fault is re-injected.
///
/// SWIFT_CORPUS_DIR is injected by tests/CMakeLists.txt.
///
//===----------------------------------------------------------------------===//

#include "clients/Registry.h"
#include "clients/TestHooks.h"
#include "difftest/DomainOracle.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace swift;
using namespace swift::difftest;

namespace {

DomainOracleOptions oracleOptions() {
  DomainOracleOptions OO;
  OO.Limits.MaxSteps = 3'000'000;
  OO.Limits.MaxSeconds = 60.0;
  OO.Schedules = 4;
  return OO;
}

void runCampaignFor(const std::string &Domain) {
  DomainCampaignOptions Opts;
  Opts.Domain = Domain;
  Opts.FirstSeed = 1;
  Opts.NumSeeds = 40;
  Opts.Oracle = oracleOptions();
  Opts.OutDir = ""; // No reproducer files from the test run.
  Opts.ReduceViolations = false;
  std::ostringstream Log;
  CampaignResult R = runDomainCampaign(Opts, Log);
  EXPECT_EQ(R.SeedsRun, 40u);
  EXPECT_EQ(R.ExhaustedSeeds, 0u) << Log.str();
  for (const SeedReport &S : R.BadSeeds)
    ADD_FAILURE() << Domain << " seed " << S.Seed << ": ["
                  << checkKindName(S.First.Kind) << "] " << S.First.Config
                  << ": " << S.First.Detail;
}

TEST(ClientCampaign, Taint) { runCampaignFor("taint"); }
TEST(ClientCampaign, NullDeref) { runCampaignFor("nullderef"); }
TEST(ClientCampaign, ReachingDefs) { runCampaignFor("reachdefs"); }
TEST(ClientCampaign, Interval) { runCampaignFor("interval"); }

//===----------------------------------------------------------------------===//
// Client corpus: clean when fixed, caught when re-injected
//===----------------------------------------------------------------------===//

struct CorpusEntry {
  std::string Path;
  std::string Domain; ///< From the "# domain:" header.
  std::string Kind;   ///< From the "# violation:" header.
};

std::vector<CorpusEntry> clientCorpus() {
  std::vector<CorpusEntry> Out;
  std::filesystem::path Dir =
      std::filesystem::path(SWIFT_CORPUS_DIR) / "clients";
  for (const auto &Entry : std::filesystem::directory_iterator(Dir)) {
    if (Entry.path().extension() != ".swiftir")
      continue;
    CorpusEntry E;
    E.Path = Entry.path().string();
    std::ifstream IS(E.Path);
    std::string Line;
    while (std::getline(IS, Line)) {
      if (Line.rfind("# domain: ", 0) == 0)
        E.Domain = Line.substr(10);
      else if (Line.rfind("# violation: ", 0) == 0)
        E.Kind = Line.substr(13, Line.find(' ', 13) - 13);
    }
    Out.push_back(std::move(E));
  }
  std::sort(Out.begin(), Out.end(),
            [](const CorpusEntry &A, const CorpusEntry &B) {
              return A.Path < B.Path;
            });
  return Out;
}

TEST(ClientCorpus, OneReproducerPerDomain) {
  std::vector<CorpusEntry> Corpus = clientCorpus();
  for (const std::string &Domain : clients::clientDomainNames()) {
    bool Found = false;
    for (const CorpusEntry &E : Corpus)
      Found |= E.Domain == Domain;
    EXPECT_TRUE(Found) << "no corpus reproducer for " << Domain;
  }
}

TEST(ClientCorpus, CleanOnTheFixedAnalyses) {
  for (const CorpusEntry &E : clientCorpus()) {
    SCOPED_TRACE(E.Path);
    ASSERT_FALSE(E.Domain.empty()) << "missing '# domain:' header";
    DomainOracleResult R = replayDomainFile(E.Path, E.Domain,
                                            oracleOptions());
    EXPECT_GT(R.RunsDone, 0u);
    for (const Violation &V : R.Violations)
      ADD_FAILURE() << "[" << checkKindName(V.Kind) << "] " << V.Config
                    << ": " << V.Detail;
  }
}

TEST(ClientCorpus, StillTripTheOracleUnderTheInjectedFault) {
  for (const CorpusEntry &E : clientCorpus()) {
    SCOPED_TRACE(E.Path);
    ASSERT_FALSE(E.Domain.empty()) << "missing '# domain:' header";
    ASSERT_FALSE(E.Kind.empty()) << "missing '# violation:' header";
    ASSERT_TRUE(clients::test::injectDomainBug(E.Domain, true));
    DomainOracleResult R = replayDomainFile(E.Path, E.Domain,
                                            oracleOptions());
    clients::test::injectDomainBug(E.Domain, false);
    bool Found = false;
    for (const Violation &V : R.Violations)
      Found |= checkKindName(V.Kind) == E.Kind;
    EXPECT_TRUE(Found) << "expected a " << E.Kind << " violation, got "
                       << R.Violations.size() << " other(s)";
  }
}

} // namespace
