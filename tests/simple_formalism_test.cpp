//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the verbatim formalism module (src/simple) against the
/// paper's figures and theorem:
///
///  * trans behaves exactly as Figure 2 on hand-checked cases,
///  * rtrans/rcomp/wp satisfy conditions C1-C3 exhaustively over the
///    small universe,
///  * the bottom-up semantics without pruning computes gamma-equivalent
///    results to the top-down semantics on random structured commands,
///  * **Theorem 3.1 (coincidence)**: for random commands, random theta,
///    and random frequency multisets M, if [[C]]^r({id#}, {}) = (R0,
///    Sigma0) and Sigma n Sigma0 = {}, then sigma' in [[C]](Sigma) iff
///    exists sigma in Sigma with (sigma, sigma') in gamma†(R0) — checked
///    literally by enumeration.
///
//===----------------------------------------------------------------------===//

#include "simple/SimpleDomain.h"
#include "support/Rng.h"

#include <gtest/gtest.h>

using namespace swift;
using namespace swift::simple;

namespace {

Vocabulary makeVocab() {
  Vocabulary V;
  V.NumVars = 2;
  V.NumSites = 2;
  V.NumStates = 3; // 0 = closed/init, 1 = opened, 2 = error
  // m0 = open: 0 -> 1, else error.   m1 = close: 1 -> 0, else error.
  V.Methods = {{1, 2, 2}, {2, 0, 2}};
  return V;
}

std::unique_ptr<Cmd> randomCmd(Rng &R, const Vocabulary &V,
                               unsigned Depth) {
  auto RandomPrim = [&]() {
    switch (R.below(3)) {
    case 0:
      return Prim::makeNew(static_cast<uint8_t>(R.below(V.NumVars)),
                           static_cast<uint8_t>(R.below(V.NumSites)));
    case 1:
      return Prim::makeCopy(static_cast<uint8_t>(R.below(V.NumVars)),
                            static_cast<uint8_t>(R.below(V.NumVars)));
    default:
      return Prim::makeInvoke(
          static_cast<uint8_t>(R.below(V.NumVars)),
          static_cast<uint8_t>(R.below(V.Methods.size())));
    }
  };
  if (Depth == 0 || R.chance(2, 5))
    return Cmd::prim(RandomPrim());
  switch (R.below(3)) {
  case 0:
    return Cmd::choice(randomCmd(R, V, Depth - 1),
                       randomCmd(R, V, Depth - 1));
  case 1:
    return Cmd::seq(randomCmd(R, V, Depth - 1),
                    randomCmd(R, V, Depth - 1));
  default:
    return Cmd::star(randomCmd(R, V, Depth - 1));
  }
}

TEST(SimpleFormalismTest, Figure2TransferByHand) {
  Vocabulary V = makeVocab();
  // sigma = (h0, opened, {v0}).
  State S{0, 1, 0b01};

  // v0 = new h1: old tuple loses v0; fresh (h1, init, {v0}).
  std::vector<State> N = trans(V, Prim::makeNew(0, 1), S);
  ASSERT_EQ(N.size(), 2u);
  EXPECT_EQ(N[0], (State{0, 1, 0}));
  EXPECT_EQ(N[1], (State{1, 0, 0b01}));

  // v1 = v0 with v0 in a: v1 joins the must set.
  N = trans(V, Prim::makeCopy(1, 0), S);
  ASSERT_EQ(N.size(), 1u);
  EXPECT_EQ(N[0], (State{0, 1, 0b11}));

  // v0 = v1 with v1 not in a: v0 leaves the must set.
  N = trans(V, Prim::makeCopy(0, 1), S);
  ASSERT_EQ(N.size(), 1u);
  EXPECT_EQ(N[0], (State{0, 1, 0}));

  // v0.close() with v0 in a: strong update opened -> closed.
  N = trans(V, Prim::makeInvoke(0, 1), S);
  ASSERT_EQ(N.size(), 1u);
  EXPECT_EQ(N[0], (State{0, 0, 0b01}));

  // v1.close() with v1 not in a: error.
  N = trans(V, Prim::makeInvoke(1, 1), S);
  ASSERT_EQ(N.size(), 1u);
  EXPECT_EQ(N[0], (State{0, 2, 0b01}));
}

/// C1 over the whole universe: rtrans(c)(r) is gamma-equivalent to trans
/// after r.
TEST(SimpleFormalismTest, C1Exhaustive) {
  Vocabulary V = makeVocab();
  std::vector<State> S = allStates(V);

  std::vector<Prim> Prims;
  for (uint8_t Var = 0; Var != V.NumVars; ++Var) {
    for (uint8_t Site = 0; Site != V.NumSites; ++Site)
      Prims.push_back(Prim::makeNew(Var, Site));
    for (uint8_t W = 0; W != V.NumVars; ++W)
      Prims.push_back(Prim::makeCopy(Var, W));
    for (uint8_t M = 0; M != V.Methods.size(); ++M)
      Prims.push_back(Prim::makeInvoke(Var, M));
  }

  // Seed relations: identity, its one-step extensions, some constants.
  std::vector<Rel> Rels{Rel::identity(V)};
  for (const Prim &P : Prims)
    for (const Rel &N : rtrans(V, P, Rels[0]))
      Rels.push_back(N);
  Rels.push_back(Rel::constant(State{1, 2, 0b10}, Pred{0b01, 0}));

  for (const Prim &P : Prims)
    for (const Rel &R : Rels) {
      std::vector<Rel> Ext = rtrans(V, P, R);
      for (const State &In : S) {
        std::set<State> Lhs;
        for (const Rel &E : Ext) {
          State Out;
          if (E.apply(In, Out))
            Lhs.insert(Out);
        }
        std::set<State> Rhs;
        State Mid;
        if (R.apply(In, Mid))
          for (const State &Out : trans(V, P, Mid))
            Rhs.insert(Out);
        ASSERT_EQ(Lhs, Rhs) << P.str() << " on " << R.str() << " at "
                            << In.str();
      }
    }
}

/// C2/C3: rcomp composes exactly; wp is the weakest precondition.
TEST(SimpleFormalismTest, C2C3Exhaustive) {
  Vocabulary V = makeVocab();
  std::vector<State> S = allStates(V);

  std::vector<Rel> Rels{Rel::identity(V)};
  for (uint8_t Var = 0; Var != V.NumVars; ++Var)
    for (const Rel &N :
         rtrans(V, Prim::makeInvoke(Var, 0), Rel::identity(V)))
      Rels.push_back(N);
  for (const Rel &N : rtrans(V, Prim::makeNew(0, 1), Rel::identity(V)))
    Rels.push_back(N);
  for (const Rel &N : rtrans(V, Prim::makeCopy(1, 0), Rels[1]))
    Rels.push_back(N);

  for (const Rel &R1 : Rels)
    for (const Rel &R2 : Rels) {
      std::vector<Rel> Comp = rcomp(R1, R2);
      ASSERT_LE(Comp.size(), 1u);
      for (const State &In : S) {
        State Mid, OutDirect, OutComp;
        bool Direct = R1.apply(In, Mid) && R2.apply(Mid, OutDirect);
        bool Composed = !Comp.empty() && Comp[0].apply(In, OutComp);
        ASSERT_EQ(Direct, Composed)
            << R1.str() << " ; " << R2.str() << " at " << In.str();
        if (Direct) {
          ASSERT_EQ(OutDirect, OutComp);
        }
      }
      // C3 for the wp used inside rcomp.
      Pred Pre;
      bool Sat = wp(R1, R2.Phi, Pre);
      for (const State &In : S) {
        State Mid;
        if (!R1.apply(In, Mid))
          continue;
        bool PostHolds = R2.Phi.holds(Mid);
        bool PreHolds = Sat && Pre.holds(In);
        ASSERT_EQ(PreHolds, PostHolds)
            << "wp(" << R1.str() << ", " << R2.Phi.str() << ") at "
            << In.str();
      }
    }
}

/// Theorem 3.1, checked literally on random structured commands with
/// random pruning parameters and frequency data.
TEST(SimpleFormalismTest, Theorem31Coincidence) {
  Vocabulary V = makeVocab();
  std::vector<State> S = allStates(V);
  Rng R(2014);

  unsigned NontrivialSigma0 = 0;
  for (int Trial = 0; Trial != 300; ++Trial) {
    std::unique_ptr<Cmd> C = randomCmd(R, V, 3);
    unsigned Theta = static_cast<unsigned>(R.below(4)); // 0 = no pruning
    std::map<State, unsigned> M;
    for (const State &St : S)
      if (R.chance(1, 4))
        M[St] = static_cast<unsigned>(R.below(5) + 1);

    RelVal Init;
    Init.Rels.insert(Rel::identity(V));
    RelVal BU = evalBottomUp(V, *C, std::move(Init), Theta, M);
    if (!BU.Sigma.empty())
      ++NontrivialSigma0;

    // Random Sigma disjoint from Sigma0.
    std::set<State> Sigma;
    for (const State &St : S)
      if (!BU.Sigma.count(St) && R.chance(1, 3))
        Sigma.insert(St);

    std::set<State> Td = evalTopDown(V, *C, Sigma);
    std::set<State> Bu = applyRels(BU.Rels, Sigma);
    ASSERT_EQ(Td, Bu) << "command " << C->str() << " theta " << Theta
                      << " |Sigma| " << Sigma.size() << " |Sigma0| "
                      << BU.Sigma.size();
  }
  // Pruning must actually have kicked in for the test to mean anything.
  EXPECT_GT(NontrivialSigma0, 50u);
}

/// Without pruning, the bottom-up result is total: Sigma0 stays empty and
/// the equivalence holds for every input set.
TEST(SimpleFormalismTest, UnprunedBottomUpIsTotal) {
  Vocabulary V = makeVocab();
  Rng R(7);
  for (int Trial = 0; Trial != 50; ++Trial) {
    std::unique_ptr<Cmd> C = randomCmd(R, V, 2);
    RelVal Init;
    Init.Rels.insert(Rel::identity(V));
    RelVal BU = evalBottomUp(V, *C, std::move(Init), 0, {});
    EXPECT_TRUE(BU.Sigma.empty()) << C->str();
  }
}

} // namespace
