//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the sharded analysis layer: the planner's DAG-respecting
/// contiguous partition, the spool segment codec and its verify-then-
/// adopt loading, the worker's solve preparation (segment adoption /
/// forced degradation), shard-count invariance of the whole in-process
/// pipeline against the pure-BU reference, and the soundness of degraded
/// partial verdicts.
///
//===----------------------------------------------------------------------===//

#include "difftest/Difftest.h"
#include "genprog/Fuzzer.h"
#include "ir/Dumper.h"
#include "shard/Coordinator.h"
#include "shard/Planner.h"
#include "shard/Sharded.h"
#include "shard/Spool.h"
#include "shard/Worker.h"
#include "support/AtomicFile.h"
#include "typestate/Runner.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>

using namespace swift;
namespace fs = std::filesystem;

namespace {

/// A fuzz program normalized through one text round trip, so every
/// consumer (solver, spool parser, reference run) shares one symbol
/// interning order.
std::unique_ptr<Program> fuzzProgram(uint64_t Seed) {
  return parseProgramText(programToText(
      *generateFuzzProgram(difftest::fuzzConfigForSeed(Seed))));
}

std::string trackedClass(const Program &Prog) {
  return Prog.symbols().text(Prog.spec(0).name());
}

/// RAII scratch directory under the system temp dir.
struct ScratchDir {
  fs::path Path;
  explicit ScratchDir(const char *Tag) {
    Path = fs::temp_directory_path() /
           (std::string("swift_shard_test_") + Tag + "_" +
            std::to_string(::getpid()));
    fs::remove_all(Path);
    fs::create_directories(Path);
  }
  ~ScratchDir() {
    std::error_code EC;
    fs::remove_all(Path, EC);
  }
  std::string str() const { return Path.string(); }
};

//===----------------------------------------------------------------------===//
// Planner
//===----------------------------------------------------------------------===//

TEST(ShardPlanner, PartitionIsContiguousCompleteAndDagOrdered) {
  std::unique_ptr<Program> Prog = fuzzProgram(7);
  TsContext Ctx(*Prog, Prog->spec(0).name());
  const CallGraph &CG = Ctx.callGraph();
  size_t NumSccs = CG.numSccs();

  for (unsigned K : {1u, 2u, 3u, 4u, 1000u}) {
    shard::ShardPlan Plan = shard::planShards(*Prog, CG, K);
    ASSERT_GE(Plan.NumShards, 1u);
    ASSERT_LE(Plan.NumShards, std::max<size_t>(1, NumSccs));
    ASSERT_EQ(Plan.ShardOfScc.size(), NumSccs);
    ASSERT_EQ(Plan.ShardSccs.size(), Plan.NumShards);
    ASSERT_EQ(Plan.ShardDeps.size(), Plan.NumShards);

    // Every SCC is owned by exactly one shard, shards cover contiguous
    // ascending ranges (so callee SCCs never live in a later shard), and
    // the ownership map agrees with the per-shard lists.
    size_t Next = 0;
    for (unsigned S = 0; S != Plan.NumShards; ++S) {
      EXPECT_FALSE(Plan.ShardSccs[S].empty());
      for (size_t Scc : Plan.ShardSccs[S]) {
        EXPECT_EQ(Scc, Next);
        EXPECT_EQ(Plan.ShardOfScc[Scc], S);
        ++Next;
      }
      // Dependencies point strictly downward in the SCC order.
      for (unsigned D : Plan.ShardDeps[S])
        EXPECT_LT(D, S);
    }
    EXPECT_EQ(Next, NumSccs);

    // Ownership of a procedure goes through its SCC.
    for (ProcId P = 0; P != Prog->numProcs(); ++P)
      EXPECT_EQ(Plan.shardOfProc(CG, P), Plan.ShardOfScc[CG.scc(P)]);
  }
}

TEST(ShardPlanner, EveryCrossShardCalleeIsADependency) {
  std::unique_ptr<Program> Prog = fuzzProgram(11);
  TsContext Ctx(*Prog, Prog->spec(0).name());
  const CallGraph &CG = Ctx.callGraph();
  shard::ShardPlan Plan = shard::planShards(*Prog, CG, 4);
  for (ProcId P = 0; P != Prog->numProcs(); ++P) {
    unsigned SP = Plan.shardOfProc(CG, P);
    for (ProcId Q : CG.callees(P)) {
      unsigned SQ = Plan.shardOfProc(CG, Q);
      if (SQ == SP)
        continue;
      const std::vector<unsigned> &Deps = Plan.ShardDeps[SP];
      EXPECT_TRUE(std::find(Deps.begin(), Deps.end(), SQ) != Deps.end())
          << "shard " << SP << " calls into shard " << SQ
          << " without a dependency edge";
    }
  }
}

//===----------------------------------------------------------------------===//
// Spool codec
//===----------------------------------------------------------------------===//

shard::Segment sampleSegment() {
  shard::Segment Seg;
  Seg.ProgHash = 0xdeadbeefcafef00dULL;
  Seg.Scc = 42;
  Seg.Procs.push_back({"alpha", "line one\nline two\n"});
  // Summary payloads are length-framed raw bytes: embedded newlines,
  // NULs, and spool keywords must survive.
  Seg.Procs.push_back(
      {"beta", std::string("crc32 ffffffff\nproc x 3\n\0\x01", 27)});
  return Seg;
}

TEST(SpoolCodec, RoundTripPreservesEverything) {
  shard::Segment Seg = sampleSegment();
  shard::Segment Back = shard::decodeSegment(shard::encodeSegment(Seg));
  EXPECT_EQ(Back.ProgHash, Seg.ProgHash);
  EXPECT_EQ(Back.Scc, Seg.Scc);
  ASSERT_EQ(Back.Procs.size(), Seg.Procs.size());
  for (size_t I = 0; I != Seg.Procs.size(); ++I) {
    EXPECT_EQ(Back.Procs[I].Name, Seg.Procs[I].Name);
    EXPECT_EQ(Back.Procs[I].SummaryText, Seg.Procs[I].SummaryText);
  }
}

TEST(SpoolCodec, CorruptionIsDetected) {
  std::string Good = shard::encodeSegment(sampleSegment());

  // Any single flipped byte must fail the frame or CRC check.
  for (size_t I = 0; I < Good.size(); I += 7) {
    std::string Bad = Good;
    Bad[I] ^= 0x20;
    EXPECT_THROW((void)shard::decodeSegment(Bad), shard::SpoolError)
        << "byte " << I << " flip undetected";
  }
  // Truncation at every prefix length must fail too.
  for (size_t Len = 0; Len < Good.size(); Len += 11)
    EXPECT_THROW((void)shard::decodeSegment(Good.substr(0, Len)),
                 shard::SpoolError)
        << "truncation to " << Len << " undetected";
  // Trailing garbage after a valid frame is not a valid segment file.
  EXPECT_THROW((void)shard::decodeSegment(Good + "x"), shard::SpoolError);
  EXPECT_THROW((void)shard::decodeSegment(std::string()), shard::SpoolError);
}

TEST(SpoolCodec, TryLoadVerifiesThenAdoptsAndNeverThrows) {
  ScratchDir Dir("tryload");
  shard::Segment Seg = sampleSegment();
  shard::saveSegment(Dir.str(), Seg);

  // Hit: same SCC and hash.
  std::optional<shard::Segment> Hit =
      shard::tryLoadSegment(Dir.str(), Seg.Scc, Seg.ProgHash);
  ASSERT_TRUE(Hit.has_value());
  EXPECT_EQ(Hit->Procs.size(), Seg.Procs.size());

  // Miss, never throw: absent file, wrong program hash, corrupt bytes.
  EXPECT_FALSE(shard::tryLoadSegment(Dir.str(), Seg.Scc + 1, Seg.ProgHash)
                   .has_value());
  EXPECT_FALSE(shard::tryLoadSegment(Dir.str(), Seg.Scc, Seg.ProgHash + 1)
                   .has_value());
  std::string Path = shard::segmentPath(Dir.str(), Seg.Scc);
  std::string Bytes = readWholeFile(Path);
  Bytes[Bytes.size() / 2] ^= 0x01;
  writeFileAtomic(Path, Bytes);
  EXPECT_FALSE(
      shard::tryLoadSegment(Dir.str(), Seg.Scc, Seg.ProgHash).has_value());
}

//===----------------------------------------------------------------------===//
// Shard-count invariance and degradation soundness
//===----------------------------------------------------------------------===//

TEST(ShardedRun, KInvariantAndCoincidesWithPureBu) {
  for (uint64_t Seed : {3u, 9u, 15u}) {
    std::unique_ptr<Program> Prog = fuzzProgram(Seed);
    std::string Class = trackedClass(*Prog);
    TsContext Ctx(*Prog, Prog->symbols().intern(Class));
    TsRunResult Bu = runTypestateBu(Ctx, RunLimits{20'000'000, 60.0});
    if (Bu.Timeout)
      continue; // resource fact; the other seeds still cover the check

    shard::ShardedOptions SO;
    std::optional<shard::ShardedResult> Ref;
    for (unsigned K : {1u, 2u, 4u}) {
      SO.NumShards = K;
      shard::ShardedResult R = shard::runShardedInProcess(*Prog, Class, SO);
      ASSERT_TRUE(R.Complete) << "seed " << Seed << " K " << K;
      EXPECT_FALSE(R.Degraded);
      EXPECT_EQ(R.ErrorSites, Bu.ErrorSites) << "seed " << Seed << " K " << K;
      EXPECT_EQ(R.MainExit, Bu.MainExit) << "seed " << Seed << " K " << K;
      if (!Ref) {
        Ref = std::move(R);
        continue;
      }
      EXPECT_EQ(R.ErrorPoints, Ref->ErrorPoints)
          << "seed " << Seed << " K " << K;
      EXPECT_EQ(R.Verdicts, Ref->Verdicts) << "seed " << Seed << " K " << K;
    }
  }
}

TEST(ShardedRun, DegradedShardsYieldSoundPartialVerdicts) {
  std::unique_ptr<Program> Prog = fuzzProgram(15);
  std::string Class = trackedClass(*Prog);
  TsContext Ctx(*Prog, Prog->symbols().intern(Class));
  TsRunResult Bu = runTypestateBu(Ctx, RunLimits{20'000'000, 60.0});
  ASSERT_FALSE(Bu.Timeout);

  shard::ShardedOptions SO;
  SO.NumShards = 2;
  SO.DegradedShards = {0};
  shard::ShardedResult D = shard::runShardedInProcess(*Prog, Class, SO);
  ASSERT_TRUE(D.Complete);

  // Degraded summaries only ever suppress relations: reported errors are
  // a subset of the full run's, and no tracked site is claimed Proved
  // once a degraded summary entered the assembly.
  for (SiteId S : D.ErrorSites)
    EXPECT_TRUE(Bu.ErrorSites.count(S)) << "@" << S;
  ASSERT_EQ(D.Verdicts.size(), Prog->numSites());
  for (uint32_t S = 0; S != D.Verdicts.size(); ++S) {
    if (!Ctx.isTrackedSite(S)) {
      EXPECT_EQ(D.Verdicts[S], TsVerdict::Proved);
      continue;
    }
    if (D.Degraded) {
      EXPECT_NE(D.Verdicts[S], TsVerdict::Proved) << "@" << S;
    }
    if (D.Verdicts[S] == TsVerdict::ErrorReported) {
      EXPECT_TRUE(Bu.ErrorSites.count(S)) << "@" << S;
    }
  }
}

//===----------------------------------------------------------------------===//
// Worker library (no processes: runWorker called in-process)
//===----------------------------------------------------------------------===//

TEST(ShardWorker, WorkersPopulateSpoolAndAssemblyMatchesBu) {
  ScratchDir Dir("worker");
  std::unique_ptr<Program> Prog = fuzzProgram(15);
  std::string Class = trackedClass(*Prog);
  std::string ProgPath = Dir.str() + "/prog.swiftir";
  writeFileAtomic(ProgPath, programToText(*Prog));

  shard::WorkerOptions WO;
  WO.ProgramPath = ProgPath;
  WO.TrackedClass = Class;
  WO.NumShards = 2;
  WO.SpoolDir = Dir.str();
  for (unsigned S = 0; S != 2; ++S) {
    WO.Shard = S;
    std::string Err;
    EXPECT_EQ(shard::runWorker(WO, &Err), shard::WorkerExitOk) << Err;
  }

  // Every SCC's segment is on disk and verifies against the plan's hash.
  TsContext Ctx(*Prog, Prog->symbols().intern(Class));
  const CallGraph &CG = Ctx.callGraph();
  shard::ShardPlan Plan = shard::planShards(*Prog, CG, 2);
  uint64_t Hash = shard::programSpoolHash(*Prog, Class);
  for (size_t Scc = 0; Scc != CG.numSccs(); ++Scc)
    EXPECT_TRUE(shard::tryLoadSegment(Dir.str(), Scc, Hash).has_value())
        << "scc " << Scc;

  // Assembling from the worker-written spool is the pure-BU run.
  shard::ShardedResult A = shard::assembleFromSpool(
      *Prog, Ctx, Plan, Dir.str(), Hash, /*DegradedShards=*/{},
      /*MaxSteps=*/UINT64_MAX);
  ASSERT_TRUE(A.Complete);
  TsRunResult Bu = runTypestateBu(Ctx);
  EXPECT_EQ(A.ErrorSites, Bu.ErrorSites);
  EXPECT_EQ(A.MainExit, Bu.MainExit);
}

TEST(ShardWorker, UsageAndFaultExitCodes) {
  ScratchDir Dir("workererr");
  std::unique_ptr<Program> Prog = fuzzProgram(3);
  std::string ProgPath = Dir.str() + "/prog.swiftir";
  writeFileAtomic(ProgPath, programToText(*Prog));

  shard::WorkerOptions WO;
  WO.ProgramPath = ProgPath;
  WO.SpoolDir = Dir.str();

  std::string Err;
  WO.Shard = 1 << 20; // far past any plan
  EXPECT_EQ(shard::runWorker(WO, &Err), shard::WorkerExitUsage);

  WO.Shard = 0;
  WO.TrackedClass = "NoSuchClass";
  EXPECT_EQ(shard::runWorker(WO, &Err), shard::WorkerExitUsage);

  WO.TrackedClass.clear();
  WO.ProgramPath = Dir.str() + "/missing.swiftir";
  EXPECT_EQ(shard::runWorker(WO, &Err), shard::WorkerExitFault);
  EXPECT_FALSE(Err.empty());

  // A starved budget is the deterministic exit, not a fault.
  WO.ProgramPath = ProgPath;
  WO.MaxSteps = 1;
  EXPECT_EQ(shard::runWorker(WO, &Err), shard::WorkerExitBudget);
}

} // namespace
