//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the differential-testing subsystem (src/difftest): the oracle
/// is clean on real fuzz programs, the injected transfer-function fault is
/// detected and delta-debugged to a tiny reproducer, reproducers replay,
/// and timed-out analysis runs report the timeout and nothing else.
///
/// Every oracle here runs under a step-only budget (huge wall limit) so
/// the timeout pattern — and hence the whole test — is deterministic on
/// slow and fast machines alike.
///
//===----------------------------------------------------------------------===//

#include "difftest/Difftest.h"
#include "ir/Dumper.h"
#include "typestate/Runner.h"
#include "typestate/Transfer.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>

using namespace swift;
using namespace swift::difftest;

namespace {

/// Scoped enablement of the test-only transfer-function fault; never leaks
/// into other tests, even on assertion failure.
struct InjectBugScope {
  InjectBugScope() { test::InjectTsCallWeakUpdateBug.store(true); }
  ~InjectBugScope() { test::InjectTsCallWeakUpdateBug.store(false); }
};

/// Step-only budget: timeouts depend on the step count, never the clock.
OracleOptions deterministicOptions(uint64_t InterpSeed) {
  OracleOptions OO;
  OO.Limits.MaxSteps = 400'000;
  OO.Limits.MaxSeconds = 3600.0;
  OO.Schedules = 4;
  OO.InterpSeed = InterpSeed;
  return OO;
}

TEST(DifftestOracleTest, CleanOnFuzzSeeds) {
  for (uint64_t Seed = 1; Seed <= 10; ++Seed) {
    std::unique_ptr<Program> Prog =
        generateFuzzProgram(fuzzConfigForSeed(Seed));
    OracleResult R = runOracle(*Prog, deterministicOptions(Seed * 1013 + 1));
    EXPECT_GT(R.RunsDone, 0u);
    for (const Violation &V : R.Violations)
      ADD_FAILURE() << "seed " << Seed << ": [" << checkKindName(V.Kind)
                    << "] " << V.Config << ": " << V.Detail;
  }
}

TEST(DifftestOracleTest, RequiresATypestateSpec) {
  std::unique_ptr<Program> Prog = parseProgramText(
      "proc main() entry 0 exit 1 nodes 2 {\n"
      "  0: nop -> 1\n"
      "  1: nop ->\n"
      "}\n"
      "main main\n");
  EXPECT_THROW((void)runOracle(*Prog, OracleOptions{}), std::runtime_error);
}

TEST(DifftestOracleTest, InjectedBugIsDetected) {
  InjectBugScope Bug;
  // Seed 15 is a known-divergent program under the injected fault: the
  // bottom-up relational path (tsPrimRels) is independent of the broken
  // top-down transfer, so bu-agreement fires.
  std::unique_ptr<Program> Prog = generateFuzzProgram(fuzzConfigForSeed(15));
  OracleOptions OO = deterministicOptions(15 * 1013 + 1);
  OO.Limits.MaxSteps = 3'000'000;
  OracleResult R = runOracle(*Prog, OO);
  ASSERT_FALSE(R.clean());
  EXPECT_EQ(R.Violations.front().Kind, CheckKind::BuAgreement);
}

TEST(DifftestReducerTest, ShrinksInjectedBugToTinyReproducer) {
  InjectBugScope Bug;
  std::unique_ptr<Program> Prog = generateFuzzProgram(fuzzConfigForSeed(15));

  ReduceOptions RO;
  RO.Oracle = deterministicOptions(15 * 1013 + 1);
  RO.Oracle.Limits.MaxSteps = 3'000'000;
  ReduceResult RR = reduceViolation(*Prog, CheckKind::BuAgreement, RO);

  // The acceptance bar from the issue: <= 3 procedures, <= 15 statements.
  EXPECT_LE(RR.NumProcs, 3u);
  EXPECT_LE(RR.NumStmts, 15u);
  EXPECT_GT(RR.OracleRuns, 1u);
  EXPECT_LT(RR.NumProcs, Prog->numProcs());

  // The reduced text is a well-formed program that still exhibits a
  // violation of the same kind...
  std::unique_ptr<Program> Re = parseProgramText(RR.Text);
  OracleResult Replayed = runOracle(*Re, RO.Oracle);
  bool SameKind = false;
  for (const Violation &V : Replayed.Violations)
    SameKind |= V.Kind == CheckKind::BuAgreement;
  EXPECT_TRUE(SameKind);

  // ...and is clean once the fault is gone, i.e. the reducer minimized the
  // bug, not some unrelated oracle artifact.
  test::InjectTsCallWeakUpdateBug.store(false);
  EXPECT_TRUE(runOracle(*Re, RO.Oracle).clean());
}

TEST(DifftestReducerTest, NonReproducingInputIsReturnedUnreduced) {
  // Without the fault the oracle is clean on seed 15, so the reducer's
  // initial interestingness test fails and the input comes back whole.
  std::unique_ptr<Program> Prog = generateFuzzProgram(fuzzConfigForSeed(15));
  ReduceOptions RO;
  RO.Oracle = deterministicOptions(15 * 1013 + 1);
  ReduceResult RR = reduceViolation(*Prog, CheckKind::BuAgreement, RO);
  EXPECT_EQ(RR.NumProcs, Prog->numProcs());
  EXPECT_EQ(RR.OracleRuns, 1u);
  EXPECT_EQ(RR.Text, programToText(*Prog));
}

TEST(DifftestCampaignTest, WriteAndReplayReproducer) {
  std::filesystem::path Dir =
      std::filesystem::temp_directory_path() / "swift_difftest_test_repros";
  std::filesystem::remove_all(Dir);

  std::unique_ptr<Program> Prog = generateFuzzProgram(fuzzConfigForSeed(3));
  Violation V{CheckKind::TdCoincidence, "swift/k1/th1", "unit-test detail"};
  std::string Path =
      writeReproducer(Dir.string(), 3, V, programToText(*Prog));
  ASSERT_FALSE(Path.empty());
  EXPECT_TRUE(std::filesystem::exists(Path));

  // The header comments are skipped by the parser; the replay runs the
  // oracle on exactly the embedded program.
  OracleResult R = replayFile(Path, deterministicOptions(1));
  EXPECT_TRUE(R.clean());
  EXPECT_GT(R.RunsDone, 0u);

  EXPECT_THROW((void)replayFile((Dir / "missing.swiftir").string(),
                                deterministicOptions(1)),
               std::runtime_error);
  std::filesystem::remove_all(Dir);
}

TEST(DifftestCampaignTest, CleanCampaignReportsNoBadSeeds) {
  CampaignOptions CO;
  CO.FirstSeed = 1;
  CO.NumSeeds = 2;
  CO.Oracle = deterministicOptions(1); // InterpSeed is re-derived per seed
  CO.OutDir.clear();                   // no filesystem traffic
  std::ostringstream Log;
  CampaignResult R = runCampaign(CO, Log);
  EXPECT_EQ(R.SeedsRun, 2u);
  EXPECT_TRUE(R.clean());
  EXPECT_FALSE(R.StoppedOnBudget);
  EXPECT_EQ(Log.str(), "");
}

//===----------------------------------------------------------------------===//
// Runner timeout contract (the bugfix part of this subsystem): a run that
// exhausts its budget reports Timeout and *nothing else* — no partially
// harvested summary/relation counts, error sites, or main-exit states that
// a consumer could mistake for a completed run's results.
//===----------------------------------------------------------------------===//

void expectTimedOutAndZeroed(const TsRunResult &R) {
  ASSERT_TRUE(R.Timeout);
  EXPECT_EQ(R.TdSummaries, 0u);
  EXPECT_EQ(R.BuRelations, 0u);
  EXPECT_TRUE(R.ErrorSites.empty());
  EXPECT_TRUE(R.ErrorPoints.empty());
  EXPECT_TRUE(R.MainExit.empty());
  for (uint64_t N : R.TdSummariesPerProc)
    EXPECT_EQ(N, 0u);
}

TEST(DifftestRunnerTest, TimedOutRunsReportNothingButTheTimeout) {
  std::unique_ptr<Program> Prog = generateFuzzProgram(fuzzConfigForSeed(1));
  TsContext Ctx(*Prog, Prog->spec(0).name());
  RunLimits Tiny{10, 3600.0}; // 10 steps: guaranteed exhaustion

  expectTimedOutAndZeroed(runTypestateTd(Ctx, Tiny));
  expectTimedOutAndZeroed(runTypestateBu(Ctx, Tiny));
  expectTimedOutAndZeroed(runTypestateBu(Ctx, Tiny, /*Threads=*/2));
  expectTimedOutAndZeroed(runTypestateSwift(Ctx, /*K=*/1, /*Theta=*/1, Tiny));
}

} // namespace
