//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the Andersen-style points-to analysis: direct flows,
/// field-sensitive heap flows, interprocedural parameter/return flows,
/// and the may-alias oracle semantics the typestate analysis relies on.
///
//===----------------------------------------------------------------------===//

#include "alias/AliasAnalysis.h"
#include "lang/Lower.h"

#include <gtest/gtest.h>

using namespace swift;

namespace {

struct Probe {
  std::unique_ptr<Program> P;
  std::unique_ptr<AliasAnalysis> A;

  explicit Probe(const char *Src) : P(parseProgram(Src)) {
    A = std::make_unique<AliasAnalysis>(*P);
  }

  bool pts(const char *Proc, const char *Var, SiteId H) const {
    ProcId Pid = P->procId(P->symbols().intern(Proc));
    return A->mayPointTo(Pid, P->symbols().intern(Var), H);
  }
};

TEST(AliasTest, CopiesAndAllocs) {
  Probe T(R"(
    typestate C { start s; error e; }
    proc main() {
      a = new C;   // h0
      b = a;
      c = new C;   // h1
      b = c;
    }
  )");
  EXPECT_TRUE(T.pts("main", "a", 0));
  EXPECT_FALSE(T.pts("main", "a", 1));
  // Flow-insensitive: b accumulates both.
  EXPECT_TRUE(T.pts("main", "b", 0));
  EXPECT_TRUE(T.pts("main", "b", 1));
  EXPECT_FALSE(T.pts("main", "c", 0));
}

TEST(AliasTest, FieldSensitivity) {
  Probe T(R"(
    typestate C { start s; error e; }
    proc main() {
      box1 = new C;  // h0
      box2 = new C;  // h1
      x = new C;     // h2
      y = new C;     // h3
      box1.f = x;
      box2.f = y;
      box1.g = y;
      fx = box1.f;
      gx = box1.g;
      fy = box2.f;
    }
  )");
  EXPECT_TRUE(T.pts("main", "fx", 2));
  EXPECT_FALSE(T.pts("main", "fx", 3)); // distinct base objects
  EXPECT_TRUE(T.pts("main", "gx", 3));  // distinct fields
  EXPECT_FALSE(T.pts("main", "gx", 2));
  EXPECT_TRUE(T.pts("main", "fy", 3));
}

TEST(AliasTest, FieldMergesThroughAliasedBases) {
  Probe T(R"(
    typestate C { start s; error e; }
    proc main() {
      box = new C;   // h0
      alias = box;
      x = new C;     // h1
      alias.f = x;
      out = box.f;   // reads through the alias
    }
  )");
  EXPECT_TRUE(T.pts("main", "out", 1));
}

TEST(AliasTest, InterproceduralFlows) {
  Probe T(R"(
    typestate C { start s; error e; }
    proc id(p) { return p; }
    proc stash(q) { cell = new C; cell.f = q; return cell; }
    proc main() {
      a = new C;         // h1 (sites number in declaration order; the
      b = id(a);         //     cell inside stash is h0)
      c = stash(a);
      d = c.f;
    }
  )");
  EXPECT_TRUE(T.pts("id", "p", 1));
  EXPECT_TRUE(T.pts("main", "b", 1));
  EXPECT_TRUE(T.pts("main", "c", 0));
  EXPECT_TRUE(T.pts("main", "d", 1)); // a flowed through the heap cell
  EXPECT_FALSE(T.pts("main", "d", 0));
}

TEST(AliasTest, ContextInsensitivityMergesCallers) {
  Probe T(R"(
    typestate C { start s; error e; }
    proc id(p) { return p; }
    proc main() {
      a = new C;  // h0
      b = new C;  // h1
      x = id(a);
      y = id(b);
    }
  )");
  // One summary for id: both callers' sites merge into both results.
  EXPECT_TRUE(T.pts("main", "x", 0));
  EXPECT_TRUE(T.pts("main", "x", 1));
  EXPECT_TRUE(T.pts("main", "y", 0));
  EXPECT_TRUE(T.pts("main", "y", 1));
}

TEST(AliasTest, UnknownVariablesPointNowhere) {
  Probe T(R"(
    typestate C { start s; error e; }
    proc main() { a = new C; }
  )");
  EXPECT_FALSE(T.pts("main", "neverseen", 0));
  EXPECT_EQ(T.A->pointsTo(T.P->mainProc(),
                          T.P->symbols().intern("neverseen"))
                .size(),
            0u);
}

TEST(AliasTest, NullAssignDoesNotAddTargets) {
  Probe T(R"(
    typestate C { start s; error e; }
    proc main() {
      a = new C;
      a = null;
      b = a;
    }
  )");
  // Flow-insensitive: a still may point to h0 (the analysis is a may
  // analysis), but null itself contributes nothing.
  EXPECT_TRUE(T.pts("main", "a", 0));
  EXPECT_TRUE(T.pts("main", "b", 0));
  EXPECT_GT(T.A->totalPtsSize(), 0u);
}

} // namespace
