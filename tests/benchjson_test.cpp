//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the "swift-bench" v1 result format (obs/BenchResult.h): the
/// schema round-trip through the JSON parser, the byte-stable key order
/// of serialized snapshots, schema-validation rejections, and the
/// swift-benchdiff comparison semantics as known-answer cases
/// (improvement / within-noise / regression / timeout flips / schema
/// mismatch).
///
//===----------------------------------------------------------------------===//

#include "obs/BenchResult.h"

#include "obs/Json.h"
#include "support/AtomicFile.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

using namespace swift;
using namespace swift::obs;
using namespace swift::obs::benchjson;

namespace {

Report sampleReport() {
  Report R;
  R.Bench = "bench_table2";
  R.Context.emplace_back("budget_seconds", 15.0);
  R.Context.emplace_back("budget_steps", 200'000'000.0);
  R.Context.emplace_back("threads", 1.0);
  Row &A = R.newRow("jpat-p", "td");
  A.set("seconds", 0.125);
  A.set("steps", 10120.0);
  A.set("td_summaries", 423.0);
  Row &B = R.newRow("jpat-p", "swift_k5_th2");
  B.set("seconds", 0.031);
  B.set("steps", 2048.0);
  B.set("td_summaries", 97.0);
  Row &C = R.newRow("sablecc-j", "td");
  C.Timeout = true;
  C.set("seconds", 15.0);
  C.set("steps", 180'000'000.0);
  C.set("td_summaries", 0.0);
  return R;
}

//===----------------------------------------------------------------------===//
// Schema round-trip + determinism
//===----------------------------------------------------------------------===//

TEST(BenchJsonTest, RoundTripPreservesEverything) {
  Report R = sampleReport();
  std::string Text = dumpReport(R);

  Report Back;
  std::string Err;
  ASSERT_TRUE(parseReport(Text, Back, &Err)) << Err;
  EXPECT_EQ(Back.Bench, R.Bench);
  ASSERT_EQ(Back.Context.size(), R.Context.size());
  for (size_t I = 0; I != R.Context.size(); ++I) {
    EXPECT_EQ(Back.Context[I].first, R.Context[I].first);
    EXPECT_EQ(Back.Context[I].second, R.Context[I].second);
  }
  ASSERT_EQ(Back.Rows.size(), R.Rows.size());
  for (size_t I = 0; I != R.Rows.size(); ++I) {
    EXPECT_EQ(Back.Rows[I].Workload, R.Rows[I].Workload);
    EXPECT_EQ(Back.Rows[I].Config, R.Rows[I].Config);
    EXPECT_EQ(Back.Rows[I].Timeout, R.Rows[I].Timeout);
    EXPECT_EQ(Back.Rows[I].Metrics, R.Rows[I].Metrics);
  }
  // Serialize-parse-serialize is byte-identical: key order is fixed by
  // construction, so snapshot diffs are stable across runs/platforms.
  EXPECT_EQ(dumpReport(Back), Text);
}

TEST(BenchJsonTest, DumpIsByteDeterministic) {
  EXPECT_EQ(dumpReport(sampleReport()), dumpReport(sampleReport()));
  // Schema keys lead in fixed order, metric keys follow insertion order.
  std::string Text = dumpReport(sampleReport());
  size_t Format = Text.find("\"format\"");
  size_t Version = Text.find("\"version\"");
  size_t Bench = Text.find("\"bench\"");
  size_t Context = Text.find("\"context\"");
  size_t Rows = Text.find("\"rows\"");
  EXPECT_LT(Format, Version);
  EXPECT_LT(Version, Bench);
  EXPECT_LT(Bench, Context);
  EXPECT_LT(Context, Rows);
  EXPECT_LT(Text.find("\"seconds\""), Text.find("\"steps\""));
}

TEST(BenchJsonTest, ParsesThroughGenericJsonParser) {
  // The emitted text is plain JSON for any consumer, not just our
  // schema-aware parser.
  json::Value V = json::parse(dumpReport(sampleReport()));
  ASSERT_TRUE(V.isObject());
  EXPECT_EQ(V.find("format")->Str, "swift-bench");
  EXPECT_EQ(V.find("version")->asU64(), 1u);
  EXPECT_EQ(V.find("rows")->Arr.size(), 3u);
}

TEST(BenchJsonTest, WriteReportLandsOnDisk) {
  std::string Path = ::testing::TempDir() + "benchjson_test_result.json";
  std::string Err;
  ASSERT_TRUE(writeReport(sampleReport(), Path, &Err)) << Err;
  Report Back;
  ASSERT_TRUE(parseReport(readWholeFile(Path), Back, &Err)) << Err;
  EXPECT_EQ(Back.Rows.size(), 3u);
  std::remove(Path.c_str());
}

//===----------------------------------------------------------------------===//
// Schema rejections
//===----------------------------------------------------------------------===//

TEST(BenchJsonTest, RejectsSchemaViolations) {
  struct Case {
    const char *Text;
    const char *WantErrPiece;
  };
  const Case Cases[] = {
      {"not json", "parse error"},
      {"[1,2]", "not an object"},
      {R"({"format":"swift-trace","version":1,"bench":"b",)"
       R"("rows":[{"workload":"w","config":"c","timeout":false,)"
       R"("metrics":{"seconds":1}}]})",
       "format"},
      {R"({"format":"swift-bench","version":2,"bench":"b",)"
       R"("rows":[{"workload":"w","config":"c","timeout":false,)"
       R"("metrics":{"seconds":1}}]})",
       "version"},
      {R"({"format":"swift-bench","version":1,"bench":"",)"
       R"("rows":[{"workload":"w","config":"c","timeout":false,)"
       R"("metrics":{"seconds":1}}]})",
       "bench"},
      {R"({"format":"swift-bench","version":1,"bench":"b","rows":[]})",
       "rows"},
      {R"({"format":"swift-bench","version":1,"bench":"b",)"
       R"("rows":[{"workload":"w","config":"c","timeout":"no",)"
       R"("metrics":{"seconds":1}}]})",
       "timeout"},
      {R"({"format":"swift-bench","version":1,"bench":"b",)"
       R"("rows":[{"workload":"w","config":"c","timeout":false,)"
       R"("metrics":{}}]})",
       "metrics"},
      {R"({"format":"swift-bench","version":1,"bench":"b",)"
       R"("rows":[{"workload":"w","config":"c","timeout":false,)"
       R"("metrics":{"seconds":-1}}]})",
       "negative"},
      {R"({"format":"swift-bench","version":1,"bench":"b",)"
       R"("rows":[{"workload":"w","config":"c","timeout":false,)"
       R"("metrics":{"seconds":1}},{"workload":"w","config":"c",)"
       R"("timeout":false,"metrics":{"seconds":2}}]})",
       "duplicate"},
  };
  for (const Case &C : Cases) {
    Report R;
    std::string Err;
    EXPECT_FALSE(parseReport(C.Text, R, &Err)) << C.Text;
    EXPECT_NE(Err.find(C.WantErrPiece), std::string::npos)
        << "error '" << Err << "' should mention '" << C.WantErrPiece
        << "'";
  }
}

//===----------------------------------------------------------------------===//
// swift-benchdiff known-answer cases
//===----------------------------------------------------------------------===//

Report oneRowReport(double Seconds, double Steps, bool Timeout = false) {
  Report R;
  R.Bench = "bench_table2";
  Row &W = R.newRow("antlr", "swift_k5_th2");
  W.Timeout = Timeout;
  W.set("seconds", Seconds);
  W.set("steps", Steps);
  return R;
}

const DiffEntry *findEntry(const DiffResult &D, std::string_view Name) {
  for (const DiffEntry &E : D.Entries)
    if (E.Name == Name)
      return &E;
  return nullptr;
}

TEST(BenchDiffTest, ImprovementIsNotARegression) {
  DiffResult D = diffReports(oneRowReport(4.0, 1000.0),
                             oneRowReport(1.0, 400.0), DiffOptions());
  EXPECT_FALSE(D.hasRegression());
  ASSERT_NE(findEntry(D, "seconds"), nullptr);
  EXPECT_EQ(findEntry(D, "seconds")->V, DiffEntry::Verdict::Improved);
  EXPECT_EQ(findEntry(D, "steps")->V, DiffEntry::Verdict::Improved);
}

TEST(BenchDiffTest, WithinNoiseIsQuiet) {
  // +20% with a 25% threshold: within noise, both directions.
  DiffResult D = diffReports(oneRowReport(1.0, 1000.0),
                             oneRowReport(1.2, 1100.0), DiffOptions());
  EXPECT_FALSE(D.hasRegression());
  EXPECT_EQ(findEntry(D, "seconds")->V, DiffEntry::Verdict::Within);
  EXPECT_EQ(findEntry(D, "steps")->V, DiffEntry::Verdict::Within);
}

TEST(BenchDiffTest, RegressionTrips) {
  DiffResult D = diffReports(oneRowReport(1.0, 1000.0),
                             oneRowReport(1.6, 2000.0), DiffOptions());
  EXPECT_TRUE(D.hasRegression());
  EXPECT_EQ(findEntry(D, "seconds")->V, DiffEntry::Verdict::Regressed);
  EXPECT_EQ(findEntry(D, "steps")->V, DiffEntry::Verdict::Regressed);
}

TEST(BenchDiffTest, AbsoluteFloorsSuppressTinyDeltas) {
  // 10ms -> 18ms is +80% but under the 50ms seconds floor; 4 -> 7 steps
  // is +75% but under the count floor of 8.
  DiffResult D = diffReports(oneRowReport(0.010, 4.0),
                             oneRowReport(0.018, 7.0), DiffOptions());
  EXPECT_FALSE(D.hasRegression());
  EXPECT_EQ(findEntry(D, "seconds")->V, DiffEntry::Verdict::Within);
  EXPECT_EQ(findEntry(D, "steps")->V, DiffEntry::Verdict::Within);
}

TEST(BenchDiffTest, MissingBaselineRowsAreTheirOwnFailureCategory) {
  // The new result dropped the only row: not a regression (nothing got
  // slower) but hasMissingRows() must trip so swift-benchdiff can exit 4
  // — a shrunken bench set must not read as a pass.
  Report Base = oneRowReport(1.0, 1000.0);
  Report Empty;
  Empty.Bench = Base.Bench;
  DiffResult D = diffReports(Base, Empty, DiffOptions());
  EXPECT_FALSE(D.hasRegression());
  EXPECT_TRUE(D.hasMissingRows());
  ASSERT_EQ(D.OnlyBaseline.size(), 1u);
  EXPECT_EQ(D.OnlyBaseline[0], "antlr/swift_k5_th2");

  // The rendering names the missing row either way; only the verdict
  // line changes with the opt-in.
  DiffOptions Strict;
  std::string StrictText = formatDiff(D, Strict);
  EXPECT_NE(StrictText.find("antlr/swift_k5_th2"), std::string::npos);
  EXPECT_NE(StrictText.find("MISSING"), std::string::npos);

  DiffOptions Allow;
  Allow.AllowMissingRows = true;
  DiffResult DA = diffReports(Base, Empty, Allow);
  EXPECT_TRUE(DA.hasMissingRows()); // the fact is reported either way
  EXPECT_FALSE(DA.hasRegression()); // the caller decides via the flag

  // Rows only in the NEW result are informational, never failing.
  DiffResult Grown = diffReports(Empty, Base, DiffOptions());
  EXPECT_FALSE(Grown.hasRegression());
  EXPECT_FALSE(Grown.hasMissingRows());
  ASSERT_EQ(Grown.OnlyNew.size(), 1u);
}

TEST(BenchDiffTest, MetricFilterSelectsDimension) {
  DiffOptions O;
  O.Metric = DiffOptions::Filter::StepsOnly;
  // Time regresses 4x (machine noise), steps are clean: the CI steps
  // gate must stay green.
  DiffResult D = diffReports(oneRowReport(1.0, 1000.0),
                             oneRowReport(4.0, 1000.0), O);
  EXPECT_FALSE(D.hasRegression());
  EXPECT_EQ(findEntry(D, "seconds"), nullptr);
  ASSERT_NE(findEntry(D, "steps"), nullptr);

  O.Metric = DiffOptions::Filter::TimeOnly;
  DiffResult T = diffReports(oneRowReport(1.0, 1000.0),
                             oneRowReport(4.0, 1000.0), O);
  EXPECT_TRUE(T.hasRegression());
  EXPECT_EQ(findEntry(T, "steps"), nullptr);
}

TEST(BenchDiffTest, TimeoutFlipsGateCorrectly) {
  // completed -> timeout is a regression even though no metric compares.
  DiffResult Worse =
      diffReports(oneRowReport(1.0, 1000.0),
                  oneRowReport(15.0, 9e7, /*Timeout=*/true), DiffOptions());
  EXPECT_TRUE(Worse.hasRegression());
  EXPECT_TRUE(Worse.Entries.empty());
  ASSERT_EQ(Worse.NewTimeouts.size(), 1u);
  EXPECT_EQ(Worse.NewTimeouts[0], "antlr/swift_k5_th2");

  // timeout -> completed is an improvement.
  DiffResult Better =
      diffReports(oneRowReport(15.0, 9e7, /*Timeout=*/true),
                  oneRowReport(1.0, 1000.0), DiffOptions());
  EXPECT_FALSE(Better.hasRegression());
  EXPECT_EQ(Better.FixedTimeouts.size(), 1u);

  // timeout on both sides: budget-truncated numbers never compare.
  DiffResult Both =
      diffReports(oneRowReport(15.0, 9e7, /*Timeout=*/true),
                  oneRowReport(15.0, 5e7, /*Timeout=*/true), DiffOptions());
  EXPECT_FALSE(Both.hasRegression());
  EXPECT_TRUE(Both.Entries.empty());
}

TEST(BenchDiffTest, RowSetChangesAreNotesNotRegressions) {
  Report Base = oneRowReport(1.0, 1000.0);
  Report New;
  New.Bench = "bench_table2";
  Row &W = New.newRow("bloat", "td");
  W.set("seconds", 2.0);
  DiffResult D = diffReports(Base, New, DiffOptions());
  EXPECT_FALSE(D.hasRegression());
  ASSERT_EQ(D.OnlyBaseline.size(), 1u);
  ASSERT_EQ(D.OnlyNew.size(), 1u);
  EXPECT_EQ(D.OnlyBaseline[0], "antlr/swift_k5_th2");
  EXPECT_EQ(D.OnlyNew[0], "bloat/td");
}

TEST(BenchDiffTest, FormatDiffSummarizesVerdict) {
  DiffOptions O;
  DiffResult Ok = diffReports(oneRowReport(1.0, 1000.0),
                              oneRowReport(1.0, 1000.0), O);
  EXPECT_NE(formatDiff(Ok, O).find("OK"), std::string::npos);
  DiffResult Bad = diffReports(oneRowReport(1.0, 1000.0),
                               oneRowReport(9.0, 9000.0), O);
  EXPECT_NE(formatDiff(Bad, O).find("REGRESSION"), std::string::npos);
}

} // namespace
