//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the workload generator and fuzzer: bit-level determinism per
/// seed, knob monotonicity, the named benchmark table, and well-formed
/// clean workloads (no protocol violations when the bug knobs are off,
/// checked concretely).
///
//===----------------------------------------------------------------------===//

#include "concrete/Interpreter.h"
#include "genprog/Fuzzer.h"
#include "genprog/Generator.h"
#include "genprog/Workloads.h"
#include "ir/Dumper.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace swift;

namespace {

std::string dump(const Program &P) {
  std::ostringstream OS;
  dumpCfg(P, OS);
  return OS.str();
}

TEST(GeneratorTest, DeterministicPerSeed) {
  GenConfig Cfg;
  Cfg.Seed = 42;
  std::unique_ptr<Program> A = generateWorkload(Cfg);
  std::unique_ptr<Program> B = generateWorkload(Cfg);
  EXPECT_EQ(dump(*A), dump(*B));
  EXPECT_EQ(generateWorkloadTsl(Cfg), generateWorkloadTsl(Cfg));

  Cfg.Seed = 43;
  std::unique_ptr<Program> C = generateWorkload(Cfg);
  EXPECT_NE(dump(*A), dump(*C));
}

TEST(GeneratorTest, ScaleKnobsGrowThePrograms) {
  GenConfig Small;
  Small.Layers = 2;
  Small.ProcsPerLayer = 3;
  Small.NumDrivers = 2;
  Small.ObjectsPerDriver = 2;
  GenConfig Big = Small;
  Big.Layers = 4;
  Big.ProcsPerLayer = 10;
  Big.NumDrivers = 8;
  Big.ObjectsPerDriver = 8;

  GenStats S1, S2;
  generateWorkload(Small, &S1);
  generateWorkload(Big, &S2);
  EXPECT_GT(S2.Procs, S1.Procs);
  EXPECT_GT(S2.Commands, S1.Commands);
  EXPECT_GT(S2.Sites, S1.Sites);
}

TEST(GeneratorTest, BugKnobInjectsConcreteViolations) {
  GenConfig Cfg;
  Cfg.Seed = 5;
  Cfg.Layers = 2;
  Cfg.ProcsPerLayer = 3;
  Cfg.NumDrivers = 4;
  Cfg.ObjectsPerDriver = 3;
  Cfg.BugPerMille = 1000; // every driver double-opens
  Cfg.MixedCallPerMille = 0;
  std::unique_ptr<Program> P = generateWorkload(Cfg);

  bool AnyError = false;
  for (uint64_t Seed = 1; Seed <= 20 && !AnyError; ++Seed) {
    InterpConfig IC;
    IC.Seed = Seed;
    InterpResult R = interpret(*P, IC);
    AnyError = R.Completed && !R.ErrorSites.empty();
  }
  EXPECT_TRUE(AnyError);
}

TEST(GeneratorTest, CleanConfigsExecuteCleanly) {
  GenConfig Cfg;
  Cfg.Seed = 17;
  Cfg.Layers = 3;
  Cfg.ProcsPerLayer = 4;
  Cfg.NumDrivers = 3;
  Cfg.ObjectsPerDriver = 4;
  Cfg.BugPerMille = 0;
  Cfg.MixedCallPerMille = 0;
  std::unique_ptr<Program> P = generateWorkload(Cfg);

  for (uint64_t Seed = 1; Seed <= 25; ++Seed) {
    InterpConfig IC;
    IC.Seed = Seed;
    InterpResult R = interpret(*P, IC);
    if (R.Completed) {
      EXPECT_TRUE(R.ErrorSites.empty()) << "schedule " << Seed;
    }
  }
}

TEST(GeneratorTest, NamedWorkloadTable) {
  const std::vector<NamedWorkload> &W = benchmarkWorkloads();
  ASSERT_EQ(W.size(), 12u);
  EXPECT_EQ(W.front().Name, "jpat-p");
  EXPECT_EQ(W.back().Name, "sablecc-j");
  EXPECT_NE(findWorkload("avrora"), nullptr);
  EXPECT_EQ(findWorkload("nope"), nullptr);

  // Sizes grow from the first to the last configuration.
  GenStats First, Last;
  generateWorkload(W.front().Config, &First);
  generateWorkload(W.back().Config, &Last);
  EXPECT_LT(First.Commands * 10, Last.Commands);
}

TEST(FuzzerTest, DeterministicAndWellFormed) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    FuzzConfig FC;
    FC.Seed = Seed;
    std::unique_ptr<Program> A = generateFuzzProgram(FC);
    std::unique_ptr<Program> B = generateFuzzProgram(FC);
    EXPECT_EQ(dump(*A), dump(*B));

    // Structural sanity: resolved calls, single exits, reachable RPO.
    for (ProcId P = 0; P != A->numProcs(); ++P) {
      const Procedure &Proc = A->proc(P);
      EXPECT_FALSE(Proc.reachableRpo().empty());
      EXPECT_EQ(Proc.reachableRpo().front(), Proc.entry());
      for (const CfgNode &Node : Proc.nodes())
        if (Node.Cmd.Kind == CmdKind::Call) {
          EXPECT_NE(Node.Cmd.Callee, InvalidProc);
          EXPECT_EQ(Node.Cmd.Args.size(),
                    A->proc(Node.Cmd.Callee).params().size());
        }
    }
  }
}

} // namespace
