//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the second framework instantiation: the kill/gen taint
/// analysis of Section 5.2. Checks basic taint propagation through copies,
/// fields, and calls, and the TD / SWIFT / BU coincidence on fuzzed
/// programs (the framework's correctness is analysis-agnostic).
///
//===----------------------------------------------------------------------===//

#include "genprog/Fuzzer.h"
#include "killgen/KgRunner.h"
#include "lang/Lower.h"

#include <gtest/gtest.h>

using namespace swift;

namespace {

KgContext makeCtx(const Program &Prog) {
  std::set<Symbol> Sources{
      const_cast<Program &>(Prog).symbols().intern("File")};
  std::set<Symbol> Sinks{const_cast<Program &>(Prog).symbols().intern("open")};
  return KgContext(Prog, std::move(Sources), std::move(Sinks));
}

TEST(KillGenTest, DirectLeak) {
  auto Prog = parseProgram(R"(
    typestate File { start s; error e; s -open-> s; }
    proc main() {
      v = new File;
      v.open();
    }
  )");
  KgContext Ctx = makeCtx(*Prog);
  KgRunResult R = runTaintTd(Ctx);
  EXPECT_EQ(R.Leaks.size(), 1u);
}

TEST(KillGenTest, LeakThroughCopyAndCall) {
  auto Prog = parseProgram(R"(
    typestate File { start s; error e; s -open-> s; s -close-> s; }
    proc main() {
      v = new File;
      w = v;
      use(w);
      u = new File;
      u.close();    // close is not a sink
    }
    proc use(f) { f.open(); }
  )");
  KgContext Ctx = makeCtx(*Prog);
  KgRunResult Td = runTaintTd(Ctx);
  EXPECT_EQ(Td.Leaks.size(), 1u);
  ProcId Use = Prog->procId(Prog->symbols().intern("use"));
  EXPECT_EQ(Td.Leaks.begin()->first, Use);
}

TEST(KillGenTest, LeakThroughHeapField) {
  auto Prog = parseProgram(R"(
    typestate File { start s; error e; s -open-> s; }
    typestate Box { start b; error eb; }
    proc main() {
      v = new File;
      b = new Box;
      b.slot = v;
      w = b.slot;
      w.open();
    }
  )");
  KgContext Ctx = makeCtx(*Prog);
  EXPECT_EQ(runTaintTd(Ctx).Leaks.size(), 1u);
}

TEST(KillGenTest, KillByOverwrite) {
  auto Prog = parseProgram(R"(
    typestate File { start s; error e; s -open-> s; }
    typestate Clean { start c; error ec; c -open-> c; }
    proc main() {
      v = new File;
      v = new Clean;   // kills v's taint
      v.open();
    }
  )");
  KgContext Ctx = makeCtx(*Prog);
  EXPECT_TRUE(runTaintTd(Ctx).Leaks.empty());
}

TEST(KillGenTest, ReturnValuePropagatesTaint) {
  auto Prog = parseProgram(R"(
    typestate File { start s; error e; s -open-> s; }
    proc make() { t = new File; return t; }
    proc main() {
      x = make();
      x.open();
    }
  )");
  KgContext Ctx = makeCtx(*Prog);
  EXPECT_EQ(runTaintTd(Ctx).Leaks.size(), 1u);
}

/// The synthesis contract of Section 5.2: kgAffected must be the exact
/// kill/gen footprint — every fact outside it passes through every
/// command unchanged, and rtrans of the identity relation is
/// gamma-equivalent to the fact-level transfer (C1 with r = id).
TEST(KillGenTest, FootprintIsExact) {
  auto Prog = parseProgram(R"(
    typestate File { start s; error e; s -open-> s; s -close-> s; }
    proc main() {
      a = new File;
      b = a;
      a.fld = b;
      c = a.fld;
      c.open();
      b.close();
      b = null;
    }
  )");
  KgContext Ctx = makeCtx(*Prog);
  ProcId Main = Prog->mainProc();
  const Procedure &Proc = Prog->proc(Main);

  // The enumerable fact universe of this program.
  std::vector<KgFact> Facts{KgFact::lambda()};
  for (Symbol V : Proc.vars())
    Facts.push_back(KgFact::var(V));
  for (Symbol F : Ctx.allFields())
    Facts.push_back(KgFact::field(F));
  Facts.push_back(KgFact::leak(Main, 5));

  for (NodeId N : Proc.reachableRpo()) {
    const Command &Cmd = Proc.node(N).Cmd;
    if (Cmd.Kind == CmdKind::Call || Cmd.Kind == CmdKind::Nop)
      continue;
    std::vector<KgFact> Affected = kgAffected(Ctx, Cmd);
    auto IsAffected = [&](const KgFact &F) {
      for (const KgFact &A : Affected)
        if (A == F)
          return true;
      return false;
    };
    for (const KgFact &F : Facts) {
      std::vector<KgFact> Out = kgTransfer(Ctx, Main, Cmd, F);
      if (!F.isLambda() && !IsAffected(F)) {
        ASSERT_EQ(Out.size(), 1u) << Cmd.str(*Prog) << " " << F.str(*Prog);
        EXPECT_EQ(Out[0], F) << Cmd.str(*Prog) << " " << F.str(*Prog);
      }
      // C1 with r = id: rtrans(id) applied to F equals transfer(F),
      // for non-Lambda facts (Lambda flows via lambdaEmits).
      if (!F.isLambda()) {
        std::set<KgFact> Lhs, Rhs(Out.begin(), Out.end());
        for (const KgRel &R :
             KgAnalysis::rtrans(Ctx, Main, Cmd, KgRel::identity()))
          if (std::optional<KgFact> O = KgAnalysis::applyRel(Ctx, R, F))
            Lhs.insert(*O);
        EXPECT_EQ(Lhs, Rhs) << Cmd.str(*Prog) << " " << F.str(*Prog);
      }
    }
  }
}

class KgCoincidenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KgCoincidenceTest, SwiftAndBuAgreeWithTd) {
  FuzzConfig FC;
  FC.Seed = GetParam() * 31 + 5;
  FC.NumProcs = 3 + GetParam() % 3;
  FC.StmtsPerProc = 6 + GetParam() % 5;
  FC.NumVars = 3;
  std::unique_ptr<Program> Prog = generateFuzzProgram(FC);
  KgContext Ctx = makeCtx(*Prog);

  KgRunLimits L;
  L.MaxSteps = 5'000'000;
  L.MaxSeconds = 20;
  KgRunResult Td = runTaintTd(Ctx, L);
  ASSERT_FALSE(Td.Timeout);

  for (auto [K, Theta] :
       {std::pair<uint64_t, uint64_t>{1, 1}, {2, 1}, {2, 4}}) {
    KgRunResult Sw = runTaintSwift(Ctx, K, Theta, L);
    ASSERT_FALSE(Sw.Timeout);
    EXPECT_EQ(Sw.Leaks, Td.Leaks)
        << "seed=" << FC.Seed << " k=" << K << " theta=" << Theta;
  }

  KgRunResult Bu = runTaintBu(Ctx, L);
  if (!Bu.Timeout) {
    EXPECT_EQ(Bu.Leaks, Td.Leaks) << "seed=" << FC.Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KgCoincidenceTest,
                         ::testing::Range<uint64_t>(1, 31));

} // namespace
