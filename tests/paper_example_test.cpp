//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's running example (Section 2, Figure 1): three File objects
/// opened and closed through a shared procedure foo. Checks that all three
/// analyses prove the program error-free, that they agree on main's exit
/// states (Theorem 3.1), and that SWIFT's bottom-up summaries for foo
/// collapse to the two cases B1 / B2 of the paper.
///
//===----------------------------------------------------------------------===//

#include "framework/Tabulation.h"
#include "lang/Lower.h"
#include "typestate/Runner.h"
#include "typestate/TsAnalysis.h"

#include <gtest/gtest.h>

using namespace swift;

namespace {

const char *PaperExample = R"(
  typestate File {
    start closed; error err;
    closed -open-> opened;
    opened -close-> closed;
  }
  proc main() {
    v1 = new File; foo(v1);
    v2 = new File; foo(v2);
    v3 = new File; foo(v3);
  }
  proc foo(f) { f.open(); f.close(); }
)";

class PaperExampleTest : public ::testing::Test {
protected:
  void SetUp() override {
    Prog = parseProgram(PaperExample);
    Ctx = std::make_unique<TsContext>(*Prog, Prog->symbols().intern("File"));
  }

  std::unique_ptr<Program> Prog;
  std::unique_ptr<TsContext> Ctx;
};

TEST_F(PaperExampleTest, TopDownProvesErrorFree) {
  TsRunResult R = runTypestateTd(*Ctx);
  EXPECT_FALSE(R.Timeout);
  EXPECT_TRUE(R.ErrorSites.empty());

  // Three tracked objects reach main's exit, all closed.
  TState Closed = Ctx->spec().initState();
  size_t Tuples = 0;
  for (const TsAbstractState &S : R.MainExit)
    if (!S.isLambda()) {
      ++Tuples;
      EXPECT_EQ(S.tstate(), Closed) << S.str(*Prog);
    }
  EXPECT_EQ(Tuples, 3u);
}

TEST_F(PaperExampleTest, SwiftCoincidesWithTopDown) {
  TsRunResult Td = runTypestateTd(*Ctx);
  for (uint64_t K : {1u, 2u, 5u}) {
    for (uint64_t Theta : {1u, 2u, 4u}) {
      TsRunResult Sw = runTypestateSwift(*Ctx, K, Theta);
      EXPECT_FALSE(Sw.Timeout);
      EXPECT_EQ(Sw.MainExit, Td.MainExit) << "k=" << K << " theta=" << Theta;
      EXPECT_EQ(Sw.ErrorSites, Td.ErrorSites);
    }
  }
}

TEST_F(PaperExampleTest, BottomUpCoincides) {
  TsRunResult Td = runTypestateTd(*Ctx);
  TsRunResult Bu = runTypestateBu(*Ctx);
  EXPECT_FALSE(Bu.Timeout);
  EXPECT_EQ(Bu.MainExit, Td.MainExit);
  EXPECT_EQ(Bu.ErrorSites, Td.ErrorSites);
  // The unpruned bottom-up analysis computes summaries for both procedures.
  EXPECT_GT(Bu.BuRelations, 0u);
}

TEST_F(PaperExampleTest, SwiftTriggersAndPrunes) {
  // k=2, theta=2 as in the paper's Section 2.3 walkthrough.
  TsRunResult Sw = runTypestateSwift(*Ctx, 2, 2);
  EXPECT_FALSE(Sw.Timeout);
  EXPECT_TRUE(Sw.ErrorSites.empty());
  EXPECT_GE(Sw.Stat.get("swift.bu_triggers"), 1u);
  EXPECT_GE(Sw.Stat.get("td.bu_served_calls"), 1u);
  // SWIFT computes fewer top-down summaries for foo than TD (which computes
  // five: T1-T5).
  TsRunResult Td = runTypestateTd(*Ctx);
  ProcId Foo = Prog->procId(Prog->symbols().intern("foo"));
  ASSERT_NE(Foo, InvalidProc);
  EXPECT_EQ(Td.TdSummariesPerProc[Foo], 5u);
  EXPECT_LT(Sw.TdSummariesPerProc[Foo], Td.TdSummariesPerProc[Foo]);
}

/// Section 2.3's punchline: with k=2, theta=2 the pruned bottom-up
/// summary of foo is exactly the two cases B1 and B2 — the identity on
/// must-not-aliased inputs and (close o open) on must-aliased inputs —
/// while B3/B4 (the may-alias cases) are pruned into Sigma.
TEST_F(PaperExampleTest, FooSummaryIsB1AndB2) {
  Budget Bud;
  Stats Stat;
  TabulationSolver<TsAnalysis>::Config Cfg;
  Cfg.K = 2;
  Cfg.Theta = 2;
  TabulationSolver<TsAnalysis> Solver(*Ctx, *Prog, Ctx->callGraph(), Cfg,
                                      Bud, Stat);
  ASSERT_TRUE(Solver.run());

  ProcId Foo = Prog->procId(Prog->symbols().intern("foo"));
  ASSERT_TRUE(Solver.buDefined(Foo));
  const auto &Summary = Solver.buSummary(Foo);
  ASSERT_EQ(Summary.Rels.size(), 2u);

  AccessPath F(Prog->symbols().intern("f"));
  TState Closed = Ctx->spec().initState();
  TState Error = Ctx->spec().errorState();
  bool SawB1 = false, SawB2 = false;
  for (const TsRelation &R : Summary.Rels) {
    ASSERT_FALSE(R.isAlloc());
    if (R.phi().notStatus(F) == ThreeVal::Yes) {
      // B1: identity on the typestate.
      for (size_t T = 0; T != R.iota().size(); ++T)
        EXPECT_EQ(R.iota()[T], T);
      SawB1 = true;
    } else if (R.phi().mustStatus(F) == ThreeVal::Yes) {
      // B2: iota = close o open (closed -> closed, opened -> error).
      EXPECT_EQ(R.iota()[Closed], Closed);
      EXPECT_EQ(R.iota()[Error], Error);
      SawB2 = true;
    }
  }
  EXPECT_TRUE(SawB1);
  EXPECT_TRUE(SawB2);
  // The pruned cases' domains (B3/B4: f in neither set) are ignored.
  ApSet Empty;
  TsAbstractState Neither(0, Closed, Empty, Empty);
  EXPECT_TRUE(Summary.SigmaAll.contains(*Ctx, Neither));
}

} // namespace
