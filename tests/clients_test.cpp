//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests for the client-domain layer: the interval transformer
/// algebra (the C2 exactness the relational summaries rely on), the
/// per-client abstract semantics on handcrafted programs, the
/// taint-adapter-vs-killgen differential (the IFDS adapter subsumes the
/// built-in kill/gen instantiation), and the in-process sharded-BU
/// wavefront smoke (worker count never changes any result).
///
//===----------------------------------------------------------------------===//

#include "clients/Registry.h"
#include "clients/interval/IntervalDomain.h"
#include "difftest/Difftest.h"
#include "genprog/Fuzzer.h"
#include "ir/Dumper.h"
#include "killgen/KgAnalysis.h"
#include "killgen/KgRunner.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

using namespace swift;
using namespace swift::clients;

namespace {

//===----------------------------------------------------------------------===//
// Interval transformer algebra
//===----------------------------------------------------------------------===//

std::vector<interval::Transformer> sampleTransformers() {
  using T = interval::Transformer;
  std::vector<T> Out{T::identity(),    T::inc(),
                     T::dec(),         T::constant(0),
                     T::constant(2),   T::step(0),
                     T::normalize(2, interval::Neg, 1),
                     T::normalize(-2, -1, interval::Pos)};
  return Out;
}

std::vector<int> sampleValues() {
  std::vector<int> Vs{interval::Neg, interval::Pos};
  for (int V = -interval::Cap; V <= interval::Cap; ++V)
    Vs.push_back(V);
  return Vs;
}

TEST(IntervalTransformer, ComposeIsPointwiseExact) {
  // C2 for the interval family: compose(G, F) computes exactly G after F
  // on every representable counter value, so call-site composition in the
  // relational solver loses no precision.
  for (const auto &G : sampleTransformers())
    for (const auto &F : sampleTransformers()) {
      interval::Transformer C = compose(G, F);
      for (int V : sampleValues())
        EXPECT_EQ(C.eval(V), G.eval(F.eval(V)))
            << "G=" << G.str() << " F=" << F.str() << " V=" << V;
    }
}

TEST(IntervalTransformer, ComposeIsCanonical) {
  // Structural equality must be semantic equality after compose: composing
  // two canonical transformers yields the canonical form again, so the
  // solver's relation dedup works.
  for (const auto &G : sampleTransformers())
    for (const auto &F : sampleTransformers()) {
      interval::Transformer C = compose(G, F);
      interval::Transformer CC = compose(C, interval::Transformer::identity());
      EXPECT_EQ(C, CC) << "G=" << G.str() << " F=" << F.str();
    }
}

TEST(IntervalTransformer, ApplyMapsEndpoints) {
  for (const auto &T : sampleTransformers())
    for (int Lo = -interval::Cap; Lo <= interval::Cap; ++Lo)
      for (int Hi = Lo; Hi <= interval::Cap; ++Hi) {
        interval::Interval I{Lo, Hi};
        interval::Interval A = T.apply(I);
        for (int V = Lo; V <= Hi; ++V)
          EXPECT_TRUE(A.contains(T.eval(V)))
              << T.str() << " on " << I.str();
      }
}

//===----------------------------------------------------------------------===//
// Registry surface
//===----------------------------------------------------------------------===//

TEST(ClientRegistry, DomainNamesAndLookup) {
  const auto &Names = clientDomainNames();
  ASSERT_EQ(Names.size(), 4u);
  EXPECT_EQ(Names[0], "taint");
  EXPECT_EQ(Names[1], "nullderef");
  EXPECT_EQ(Names[2], "reachdefs");
  EXPECT_EQ(Names[3], "interval");
  for (const std::string &N : Names)
    EXPECT_TRUE(isClientDomain(N));
  EXPECT_FALSE(isClientDomain("typestate"));
  EXPECT_FALSE(isClientDomain("bogus"));
}

TEST(ClientRegistry, UnknownDomainThrows) {
  auto Prog = parseProgramText("typestate File {\n"
                               "  states closed opened err\n"
                               "  init closed\n"
                               "  error err\n"
                               "  method open = opened err err\n"
                               "}\n"
                               "proc main() entry 0 exit 1 nodes 2 {\n"
                               "  0: nop -> 1\n"
                               "  1: nop ->\n"
                               "}\n"
                               "main main\n");
  ASSERT_NE(Prog, nullptr);
  EXPECT_THROW(runClientDomain("bogus", *Prog, DomainMode::Td, 1, 1, 1),
               std::runtime_error);
}

//===----------------------------------------------------------------------===//
// Handcrafted per-client semantics
//===----------------------------------------------------------------------===//

const char *TsHeader = "typestate File {\n"
                       "  states closed opened err\n"
                       "  init closed\n"
                       "  error err\n"
                       "  method close = err closed err\n"
                       "  method open = opened err err\n"
                       "  method reset = closed closed err\n"
                       "}\n";

std::unique_ptr<Program> parse(const std::string &Body) {
  auto Prog = parseProgramText(TsHeader + Body + "main main\n");
  EXPECT_NE(Prog, nullptr);
  return Prog;
}

/// Runs \p Domain in all three modes and checks reports and exit facts
/// coincide (Theorem 3.1 on the client layer), returning the TD result.
DomainRunResult runAllModes(const std::string &Domain, const Program &P) {
  DomainRunResult Td = runClientDomain(Domain, P, DomainMode::Td, 1, 1, 1);
  DomainRunResult Sw = runClientDomain(Domain, P, DomainMode::Swift, 1, 2, 1);
  DomainRunResult Bu = runClientDomain(Domain, P, DomainMode::Bu, 1, 1, 1);
  EXPECT_FALSE(Td.Timeout);
  EXPECT_EQ(Td.Reports, Sw.Reports) << Domain << ": swift reports";
  EXPECT_EQ(Td.ExitFacts, Sw.ExitFacts) << Domain << ": swift exit facts";
  EXPECT_EQ(Td.Reports, Bu.Reports) << Domain << ": bu reports";
  EXPECT_EQ(Td.ExitFacts, Bu.ExitFacts) << Domain << ": bu exit facts";
  return Td;
}

TEST(ClientSemantics, TaintFlowsThroughHeap) {
  auto P = parse("proc main() entry 0 exit 1 nodes 8 {\n"
                 "  0: nop -> 2\n"
                 "  1: nop ->\n"
                 "  2: v0 = new File @0 -> 3\n"
                 "  3: v1 = new File @1 -> 4\n"
                 "  4: v1.g0 = v0 -> 5\n"
                 "  5: v2 = v1.g0 -> 6\n"
                 "  6: v2.open() -> 7\n"
                 "  7: $ret = null -> 1\n"
                 "}\n");
  DomainRunResult R = runAllModes("taint", *P);
  std::set<std::pair<ProcId, NodeId>> Want{{P->mainProc(), 6}};
  EXPECT_EQ(R.Reports, Want);
}

TEST(ClientSemantics, NullDerefThroughFieldAndDirect) {
  auto P = parse("proc main() entry 0 exit 1 nodes 8 {\n"
                 "  0: nop -> 2\n"
                 "  1: nop ->\n"
                 "  2: v1 = new File @0 -> 3\n"
                 "  3: v0 = null -> 4\n"
                 "  4: v1.g0 = v0 -> 5\n"
                 "  5: v2 = v1.g0 -> 6\n"
                 "  6: v2.open() -> 7\n"
                 "  7: $ret = null -> 1\n"
                 "}\n");
  DomainRunResult R = runAllModes("nullderef", *P);
  // The loaded null dereferences at 6; the explicitly-null v0 never does.
  std::set<std::pair<ProcId, NodeId>> Want{{P->mainProc(), 6}};
  EXPECT_EQ(R.Reports, Want);
}

TEST(ClientSemantics, ReachingDefsKillsAndCallUntracks) {
  auto P = parse("proc q0() entry 0 exit 1 nodes 3 {\n"
                 "  0: nop -> 2\n"
                 "  1: nop ->\n"
                 "  2: $ret = null -> 1\n"
                 "}\n"
                 "proc main() entry 0 exit 1 nodes 7 {\n"
                 "  0: nop -> 2\n"
                 "  1: nop ->\n"
                 "  2: v0 = new File @0 -> 3\n"
                 "  3: v0 = null -> 4\n"
                 "  4: v1 = new File @1 -> 5\n"
                 "  5: v1 = call q0() -> 6\n"
                 "  6: $ret = null -> 1\n"
                 "}\n");
  DomainRunResult R = runAllModes("reachdefs", *P);
  // v0's alloc def is killed by the null assignment; v1's def is
  // untracked by the call; $ret's def at 6 survives.
  EXPECT_EQ(R.ExitFacts, (std::set<std::string>{"def(v0@main:3)",
                                                "def($ret@main:6)"}));
}

TEST(ClientSemantics, IntervalUnderflowAndFieldFacts) {
  auto P = parse("proc main() entry 0 exit 1 nodes 8 {\n"
                 "  0: nop -> 2\n"
                 "  1: nop ->\n"
                 "  2: v0 = new File @0 -> 3\n"
                 "  3: v0.open() -> 4\n"
                 "  4: v0.g0 = v0 -> 5\n"
                 "  5: v0.close() -> 6\n"
                 "  6: v0.close() -> 7\n"
                 "  7: $ret = null -> 1\n"
                 "}\n");
  DomainRunResult R = runAllModes("interval", *P);
  // open raises the counter to 1, the field snapshot holds [1,1], the
  // first close is safe (counter 1), the second underflows (counter 0).
  std::set<std::pair<ProcId, NodeId>> Want{{P->mainProc(), 6}};
  EXPECT_EQ(R.Reports, Want);
  EXPECT_TRUE(R.ExitFacts.count("in(*.g0,[1,1])"))
      << "field fact missing";
}

TEST(ClientSemantics, IntervalCalleeStoreRoutesThroughCall) {
  // Regression for the bottom-up call footprint: an actual's value
  // funneled into a field by the callee must surface in the caller's
  // summary (the identity row alone would route it around the call).
  auto P = parse("proc q0(p0) entry 0 exit 1 nodes 3 {\n"
                 "  0: nop -> 2\n"
                 "  1: nop ->\n"
                 "  2: p0.g0 = p0 -> 1\n"
                 "}\n"
                 "proc main() entry 0 exit 1 nodes 5 {\n"
                 "  0: nop -> 2\n"
                 "  1: nop ->\n"
                 "  2: v0 = new File @0 -> 3\n"
                 "  3: call q0(v0) -> 4\n"
                 "  4: $ret = null -> 1\n"
                 "}\n");
  DomainRunResult R = runAllModes("interval", *P);
  EXPECT_TRUE(R.ExitFacts.count("in(*.g0,[0,0])"))
      << "callee field store lost";
}

//===----------------------------------------------------------------------===//
// Adapter-vs-killgen differential
//===----------------------------------------------------------------------===//

TEST(ClientDifferential, TaintAdapterMatchesKillgen) {
  // The IFDS-shaped taint client subsumes the built-in kill/gen
  // instantiation: identical leak sites on fuzzed workloads, in every
  // mode. (Fuzz programs use exactly the File/open convention both share.)
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    auto Prog = generateFuzzProgram(difftest::fuzzConfigForSeed(Seed));
    ASSERT_NE(Prog, nullptr);
    KgContext Ctx(*Prog, {Prog->symbols().intern("File")},
                  {Prog->symbols().intern("open")});
    KgRunResult Kg = runTaintTd(Ctx);
    ASSERT_FALSE(Kg.Timeout);

    DomainRunResult Td =
        runClientDomain("taint", *Prog, DomainMode::Td, 1, 1, 1);
    ASSERT_FALSE(Td.Timeout);
    EXPECT_EQ(Td.Reports, Kg.Leaks) << "seed " << Seed;

    DomainRunResult Sw =
        runClientDomain("taint", *Prog, DomainMode::Swift, 1, 2, 1);
    EXPECT_EQ(Sw.Reports, Kg.Leaks) << "seed " << Seed << " (swift)";
  }
}

//===----------------------------------------------------------------------===//
// Sharded-BU wavefront smoke: worker count is invisible
//===----------------------------------------------------------------------===//

TEST(ClientSharding, WorkerCountNeverChangesResults) {
  // The same in-process SCC-DAG wavefront that backs the shard tooling
  // runs under Swift and Bu modes; every observable — reports, exit
  // facts, summary and relation counts — must be identical at any width.
  for (uint64_t Seed : {3u, 7u, 11u}) {
    auto Prog = generateFuzzProgram(difftest::fuzzConfigForSeed(Seed));
    ASSERT_NE(Prog, nullptr);
    for (const std::string &Domain : clientDomainNames()) {
      for (DomainMode Mode : {DomainMode::Swift, DomainMode::Bu}) {
        DomainRunResult Base =
            runClientDomain(Domain, *Prog, Mode, 1, 2, 1);
        ASSERT_FALSE(Base.Timeout) << Domain << " seed " << Seed;
        for (unsigned Threads : {2u, 4u}) {
          DomainRunResult R =
              runClientDomain(Domain, *Prog, Mode, 1, 2, Threads);
          EXPECT_EQ(R.Reports, Base.Reports)
              << Domain << " seed " << Seed << " th" << Threads;
          EXPECT_EQ(R.ExitFacts, Base.ExitFacts)
              << Domain << " seed " << Seed << " th" << Threads;
          EXPECT_EQ(R.BuRelations, Base.BuRelations)
              << Domain << " seed " << Seed << " th" << Threads;
          EXPECT_EQ(R.TdSummaries, Base.TdSummaries)
              << Domain << " seed " << Seed << " th" << Threads;
        }
      }
    }
  }
}

} // namespace
