//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the IR substrate: the structured builder's CFG lowering
/// (branches, loops, return normalization), call resolution, reachability,
/// stable-parameter tracking, the call graph (SCCs, recursion,
/// reachability order), and mod-ref summaries.
///
//===----------------------------------------------------------------------===//

#include "ir/CallGraph.h"
#include "ir/Dumper.h"
#include "ir/ModRef.h"
#include "ir/ProgramBuilder.h"

#include <gtest/gtest.h>

#include <sstream>

using namespace swift;

namespace {

std::unique_ptr<Program> buildDiamond() {
  ProgramBuilder B;
  B.addTypestate("File", {"c", "o", "e"}, "c", "e",
                 {{"c", "open", "o"}, {"o", "close", "c"}});
  B.beginProc("main", {});
  B.alloc("v", "File");
  B.beginIf();
  B.tsCall("v", "open");
  B.orElse();
  B.copy("w", "v");
  B.endIf();
  B.tsCall("v", "close");
  B.endProc();
  return B.finish();
}

TEST(IrTest, IfElseLowersToDiamond) {
  std::unique_ptr<Program> P = buildDiamond();
  const Procedure &Main = P->proc(P->mainProc());
  // Entry and exit are distinct Nops; every node is reachable exactly once
  // in the RPO.
  EXPECT_EQ(Main.node(Main.entry()).Cmd.Kind, CmdKind::Nop);
  EXPECT_EQ(Main.node(Main.exit()).Cmd.Kind, CmdKind::Nop);
  EXPECT_TRUE(Main.node(Main.exit()).Succs.empty());

  // The alloc node is the branch point: two successors.
  bool FoundBranch = false;
  for (NodeId N : Main.reachableRpo())
    if (Main.node(N).Cmd.Kind == CmdKind::Alloc) {
      EXPECT_EQ(Main.node(N).Succs.size(), 2u);
      FoundBranch = true;
    }
  EXPECT_TRUE(FoundBranch);

  // Each command records its own node id.
  for (NodeId N : Main.reachableRpo())
    if (Main.node(N).Cmd.Kind != CmdKind::Nop) {
      EXPECT_EQ(Main.node(N).Cmd.Self, N);
    }
}

TEST(IrTest, LoopHasBackEdgeAndExit) {
  ProgramBuilder B;
  B.addTypestate("T", {"a", "e"}, "a", "e", {});
  B.beginProc("main", {});
  B.beginLoop();
  B.alloc("v", "T");
  B.endLoop();
  B.assignNull("v");
  B.endProc();
  std::unique_ptr<Program> P = B.finish();
  const Procedure &Main = P->proc(P->mainProc());

  // The loop head has two successors (body and after), and the body's last
  // node loops back to the head.
  NodeId Head = InvalidNode;
  for (NodeId N : Main.reachableRpo())
    if (Main.node(N).Cmd.Kind == CmdKind::Nop &&
        Main.node(N).Succs.size() == 2)
      Head = N;
  ASSERT_NE(Head, InvalidNode);
  NodeId Body = Main.node(Head).Succs[0];
  EXPECT_EQ(Main.node(Body).Cmd.Kind, CmdKind::Alloc);
  EXPECT_EQ(Main.node(Body).Succs.size(), 1u);
  EXPECT_EQ(Main.node(Body).Succs[0], Head);
}

TEST(IrTest, ReturnNormalization) {
  ProgramBuilder B;
  B.addTypestate("T", {"a", "e"}, "a", "e", {});
  B.beginProc("id", {"x"});
  B.ret("x");
  B.endProc();
  B.beginProc("none", {});
  B.ret();
  B.endProc();
  B.beginProc("fallthrough", {});
  B.assignNull("y");
  B.endProc();
  B.beginProc("main", {});
  B.callAssign("a", "id", {"a"});
  B.call("none", {});
  B.call("fallthrough", {});
  B.endProc();
  std::unique_ptr<Program> P = B.finish();

  // `return x` becomes `$ret = x`; `return;` and fall-through become
  // `$ret = null`.
  auto HasRetAssign = [&](const char *Name, CmdKind Kind) {
    const Procedure &Proc = P->proc(P->procId(P->symbols().intern(Name)));
    for (NodeId N : Proc.reachableRpo()) {
      const Command &C = Proc.node(N).Cmd;
      if (C.Dst == P->retVar())
        return C.Kind == Kind;
    }
    return false;
  };
  EXPECT_TRUE(HasRetAssign("id", CmdKind::Copy));
  EXPECT_TRUE(HasRetAssign("none", CmdKind::AssignNull));
  EXPECT_TRUE(HasRetAssign("fallthrough", CmdKind::AssignNull));
}

TEST(IrTest, DeadCodeAfterReturnIsUnreachable) {
  ProgramBuilder B;
  B.addTypestate("T", {"a", "e"}, "a", "e", {});
  B.beginProc("main", {});
  B.ret();
  B.alloc("dead", "T");
  B.endProc();
  std::unique_ptr<Program> P = B.finish();
  const Procedure &Main = P->proc(P->mainProc());
  for (NodeId N : Main.reachableRpo())
    EXPECT_NE(Main.node(N).Cmd.Kind, CmdKind::Alloc);
}

TEST(IrTest, StableParams) {
  ProgramBuilder B;
  B.addTypestate("T", {"a", "e"}, "a", "e", {});
  B.beginProc("f", {"p", "q"});
  B.copy("q", "p"); // q reassigned, p only read
  B.endProc();
  B.beginProc("main", {});
  B.call("f", {"x", "x"});
  B.endProc();
  std::unique_ptr<Program> P = B.finish();
  const Procedure &F = P->proc(P->procId(P->symbols().intern("f")));
  EXPECT_TRUE(F.isStableParam(P->symbols().intern("p")));
  EXPECT_FALSE(F.isStableParam(P->symbols().intern("q")));
  EXPECT_FALSE(F.isStableParam(P->symbols().intern("x"))); // not a param
}

TEST(IrTest, BuilderRejectsErrors) {
  {
    ProgramBuilder B;
    B.beginProc("main", {});
    EXPECT_THROW(B.alloc("v", "Undeclared"), std::runtime_error);
  }
  {
    ProgramBuilder B;
    B.addTypestate("T", {"a", "e"}, "a", "e", {});
    B.beginProc("main", {});
    B.call("nosuch", {});
    B.endProc();
    EXPECT_THROW(B.finish(), std::runtime_error);
  }
  {
    ProgramBuilder B;
    B.addTypestate("T", {"a", "e"}, "a", "e", {});
    B.beginProc("f", {"x"});
    B.endProc();
    B.beginProc("main", {});
    B.call("f", {}); // arity mismatch
    B.endProc();
    EXPECT_THROW(B.finish(), std::runtime_error);
  }
  {
    ProgramBuilder B;
    B.addTypestate("T", {"a", "e"}, "a", "e", {});
    B.beginProc("f", {});
    B.endProc();
    EXPECT_THROW(B.finish("main"), std::runtime_error); // no main
  }
}

std::unique_ptr<Program> buildCallGraphProgram() {
  // main -> a -> b <-> c (mutual recursion), b -> d, e is unreachable.
  ProgramBuilder B;
  B.addTypestate("T", {"s", "e"}, "s", "e", {});
  B.beginProc("d", {});
  B.endProc();
  B.beginProc("c", {});
  B.call("b", {});
  B.endProc();
  B.beginProc("b", {});
  B.beginIf();
  B.call("c", {});
  B.orElse();
  B.call("d", {});
  B.endIf();
  B.endProc();
  B.beginProc("a", {});
  B.call("b", {});
  B.endProc();
  B.beginProc("e", {});
  B.call("e", {});
  B.endProc();
  B.beginProc("main", {});
  B.call("a", {});
  B.endProc();
  return B.finish();
}

TEST(IrTest, CallGraphSccsAndRecursion) {
  std::unique_ptr<Program> P = buildCallGraphProgram();
  CallGraph CG(*P);
  auto Id = [&](const char *N) {
    return P->procId(P->symbols().intern(N));
  };

  EXPECT_EQ(CG.scc(Id("b")), CG.scc(Id("c")));
  EXPECT_NE(CG.scc(Id("b")), CG.scc(Id("d")));
  EXPECT_TRUE(CG.isRecursive(Id("b")));
  EXPECT_TRUE(CG.isRecursive(Id("c")));
  EXPECT_TRUE(CG.isRecursive(Id("e"))); // self loop
  EXPECT_FALSE(CG.isRecursive(Id("a")));

  // Callee-before-caller order from main.
  std::vector<ProcId> R = CG.reachableFrom(P->mainProc());
  EXPECT_EQ(R.size(), 5u); // main, a, b, c, d — not e
  auto Pos = [&](ProcId X) {
    for (size_t I = 0; I != R.size(); ++I)
      if (R[I] == X)
        return I;
    return R.size();
  };
  EXPECT_LT(Pos(Id("d")), Pos(Id("b")));
  EXPECT_LT(Pos(Id("b")), Pos(Id("a")));
  EXPECT_LT(Pos(Id("a")), Pos(P->mainProc()));
  EXPECT_EQ(Pos(Id("e")), R.size());
}

TEST(IrTest, ModRefTransitiveClosure) {
  ProgramBuilder B;
  B.addTypestate("T", {"s", "e"}, "s", "e", {});
  B.beginProc("leaf", {"x", "y"});
  B.store("x", "fld", "y");
  B.endProc();
  B.beginProc("mid", {"x"});
  B.call("leaf", {"x", "x"});
  B.endProc();
  B.beginProc("clean", {"x"});
  B.load("z", "x", "fld");
  B.endProc();
  B.beginProc("main", {});
  B.call("mid", {"v"});
  B.call("clean", {"v"});
  B.endProc();
  std::unique_ptr<Program> P = B.finish();
  CallGraph CG(*P);
  ModRef MR(*P, CG);
  Symbol Fld = P->symbols().intern("fld");
  auto Id = [&](const char *N) {
    return P->procId(P->symbols().intern(N));
  };
  EXPECT_TRUE(MR.mayModField(Id("leaf"), Fld));
  EXPECT_TRUE(MR.mayModField(Id("mid"), Fld));
  EXPECT_TRUE(MR.mayModField(P->mainProc(), Fld));
  EXPECT_FALSE(MR.mayModField(Id("clean"), Fld));
}

TEST(IrTest, DumperProducesListing) {
  std::unique_ptr<Program> P = buildDiamond();
  std::ostringstream OS;
  dumpCfg(*P, OS);
  EXPECT_NE(OS.str().find("proc main()"), std::string::npos);
  EXPECT_NE(OS.str().find("v = new File@h0"), std::string::npos);
  EXPECT_GT(sourceLineEstimate(*P), 5u);
}

} // namespace
