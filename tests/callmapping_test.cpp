//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the call-boundary mappings and — crucially — the exact
/// agreement between the state-level call handling (enter / callee
/// transform / combine, what the top-down analysis does) and the
/// relation-level call composition (tsComposeCall, what the bottom-up
/// analysis does). This agreement is condition C1 at call commands and is
/// what Theorem 3.1 rests on; it is checked here over exhaustive small
/// state universes for several call shapes, including duplicate actuals,
/// unstable formals, and result-variable reuse.
///
//===----------------------------------------------------------------------===//

#include "ir/ProgramBuilder.h"
#include "lang/Lower.h"
#include "typestate/CallMapping.h"
#include "typestate/RelCall.h"
#include "typestate/Transfer.h"

#include <gtest/gtest.h>

#include <set>

using namespace swift;

namespace {

/// One test scenario: a callee body (as primitive commands over formals)
/// and a call site shape.
struct Scenario {
  const char *Name;
  const char *Source; ///< Whole TSL program; callee must be named "g".
};

const Scenario Scenarios[] = {
    {"simple",
     R"(typestate File { start c; error e; c -open-> o; o -close-> c; }
        proc g(p) { p.open(); p.close(); }
        proc main() { a = new File; g(a); b = new File; g(b); })"},
    {"duplicate-actuals",
     R"(typestate File { start c; error e; c -open-> o; o -close-> c; }
        proc g(p, q) { p.open(); q.close(); }
        proc main() { a = new File; g(a, a); b = new File; g(a, b); })"},
    {"unstable-formal",
     R"(typestate File { start c; error e; c -open-> o; o -close-> c; }
        proc g(p) { p.open(); p = new File; }
        proc main() { a = new File; g(a); })"},
    {"result-is-actual",
     R"(typestate File { start c; error e; c -open-> o; o -close-> c; }
        proc g(p) { p.open(); return p; }
        proc main() { a = new File; a = g(a); b = g(a); })"},
    {"fields-and-mods",
     R"(typestate File { start c; error e; c -open-> o; o -close-> c; }
        proc g(p) { x = new File; p.fld = x; y = p.fld; y.open(); }
        proc main() { a = new File; a.fld = a; g(a); z = a.fld; })"},
};

/// Enumerates all well-formed states over the caller's variables (paths
/// of length <= 1 over one field).
std::vector<TsAbstractState> enumerateStates(const Program &P,
                                             ProcId Caller, SiteId MaxSite,
                                             Symbol Field) {
  std::vector<AccessPath> Paths;
  for (Symbol V : P.proc(Caller).vars()) {
    if (V == P.retVar())
      continue;
    Paths.push_back(AccessPath(V));
    Paths.push_back(AccessPath(V, Field));
  }
  std::vector<TsAbstractState> Out;
  size_t Assignments = 1;
  for (size_t I = 0; I != Paths.size(); ++I)
    Assignments *= 3;
  for (SiteId H = 0; H != MaxSite; ++H)
    for (TState T = 0; T != 3; ++T)
      for (size_t Mask = 0; Mask != Assignments; ++Mask) {
        ApSet A, N;
        size_t M = Mask;
        for (size_t I = 0; I != Paths.size(); ++I) {
          switch (M % 3) {
          case 1:
            A.insert(Paths[I]);
            break;
          case 2:
            N.insert(Paths[I]);
            break;
          default:
            break;
          }
          M /= 3;
        }
        Out.emplace_back(H, T, std::move(A), std::move(N));
      }
  return Out;
}

/// Computes the callee's full bottom-up summary (all relations at exit,
/// unpruned) by brute-force fixpoint over its CFG.
struct CalleeSummary {
  std::vector<TsRelation> Rels;
  bool LambdaExit = true;
};

CalleeSummary analyzeCalleeBrute(const TsContext &Ctx, ProcId G) {
  const Procedure &Proc = Ctx.program().proc(G);
  std::vector<std::set<TsRelation>> Vals(Proc.numNodes());
  std::vector<bool> HasLambda(Proc.numNodes(), false);
  Vals[Proc.entry()].insert(
      TsRelation::makeIdentity(Ctx.spec().numStates()));
  HasLambda[Proc.entry()] = true;

  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (NodeId N : Proc.reachableRpo()) {
      const CfgNode &Node = Proc.node(N);
      if (Node.Cmd.Kind == CmdKind::Call)
        continue; // Scenarios keep callees call-free.
      std::vector<TsRelation> Out;
      for (const TsRelation &R : Vals[N])
        for (TsRelation &R2 : tsRtrans(Ctx, G, Node.Cmd, R))
          Out.push_back(std::move(R2));
      if (HasLambda[N])
        for (TsRelation &R2 : tsLambdaEmits(Ctx, Node.Cmd))
          Out.push_back(std::move(R2));
      for (NodeId S : Node.Succs) {
        for (const TsRelation &R : Out)
          Changed |= Vals[S].insert(R).second;
        if (HasLambda[N] && !HasLambda[S]) {
          HasLambda[S] = true;
          Changed = true;
        }
      }
    }
  }

  CalleeSummary Sum;
  Sum.Rels.assign(Vals[Proc.exit()].begin(), Vals[Proc.exit()].end());
  Sum.LambdaExit = HasLambda[Proc.exit()];
  return Sum;
}

/// The state route: enter, run the callee's transfer functions over its
/// CFG from the entry state, combine every exit state with the frame.
std::set<TsAbstractState> stateRoute(const TsContext &Ctx,
                                     const CallBinding &B, ProcId G,
                                     const TsAbstractState &S) {
  const Procedure &Proc = Ctx.program().proc(G);
  TsAbstractState Entry = tsEnter(B, S);
  std::vector<std::set<TsAbstractState>> Vals(Proc.numNodes());
  Vals[Proc.entry()].insert(Entry);
  bool Changed = true;
  while (Changed) {
    Changed = false;
    for (NodeId N : Proc.reachableRpo()) {
      const CfgNode &Node = Proc.node(N);
      if (Node.Cmd.Kind == CmdKind::Call)
        continue;
      for (const TsAbstractState &Cur : Vals[N])
        for (const TsAbstractState &Next :
             tsTransfer(Ctx, G, Node.Cmd, Cur))
          for (NodeId Succ : Node.Succs)
            Changed |= Vals[Succ].insert(Next).second;
    }
  }
  std::set<TsAbstractState> Out;
  for (const TsAbstractState &Exit : Vals[Proc.exit()]) {
    if (S.isLambda()) {
      if (Exit.isLambda())
        Out.insert(Exit);
      else
        Out.insert(tsCombineFresh(B, Exit));
    } else if (!Exit.isLambda()) {
      Out.insert(tsCombine(B, S, Exit));
    }
  }
  return Out;
}

/// The relation route: compose the caller identity (or Lambda) with the
/// callee's brute-force summary and apply the composites to S.
std::set<TsAbstractState> relationRoute(const TsContext &Ctx,
                                        const CallBinding &B,
                                        const CalleeSummary &Sum,
                                        const TsAbstractState &S) {
  TsIgnoreSet EmptySigma;
  TsSummaryView View{&Sum.Rels, &EmptySigma};
  std::vector<TsRelation> Out;
  TsIgnoreSet SigmaOut;
  if (S.isLambda()) {
    tsComposeCallLambda(Ctx, B, View, Out, SigmaOut);
  } else {
    // Compose from the caller-side identity relation.
    TsRelation Id = TsRelation::makeIdentity(Ctx.spec().numStates());
    tsComposeCall(Ctx, B, Id, View, Out, SigmaOut);
  }
  EXPECT_TRUE(SigmaOut.empty());

  std::set<TsAbstractState> Res;
  if (S.isLambda() && Sum.LambdaExit)
    Res.insert(TsAbstractState::lambda());
  for (const TsRelation &R : Out)
    if (std::optional<TsAbstractState> O = R.apply(Ctx, S))
      Res.insert(*O);
  return Res;
}

TEST(CallMappingTest, StateAndRelationRoutesAgree) {
  for (const Scenario &Sc : Scenarios) {
    std::unique_ptr<Program> Prog = parseProgram(Sc.Source);
    TsContext Ctx(*Prog, Prog->symbols().intern("File"));
    ProcId G = Prog->procId(Prog->symbols().intern("g"));
    ASSERT_NE(G, InvalidProc) << Sc.Name;

    CalleeSummary Sum = analyzeCalleeBrute(Ctx, G);

    // Check every call site to g in main against every enumerable state.
    const Procedure &Main = Prog->proc(Prog->mainProc());
    Symbol Field = Prog->symbols().intern("fld");
    std::vector<TsAbstractState> States = enumerateStates(
        *Prog, Prog->mainProc(),
        static_cast<SiteId>(Prog->numSites()), Field);
    States.push_back(TsAbstractState::lambda());

    for (NodeId N : Main.reachableRpo()) {
      const Command &Cmd = Main.node(N).Cmd;
      if (Cmd.Kind != CmdKind::Call || Cmd.Callee != G)
        continue;
      CallBinding B(Ctx, Prog->mainProc(), Cmd);
      size_t Checked = 0;
      for (const TsAbstractState &S : States) {
        std::set<TsAbstractState> Lhs = stateRoute(Ctx, B, G, S);
        std::set<TsAbstractState> Rhs = relationRoute(Ctx, B, Sum, S);
        ASSERT_EQ(Lhs, Rhs)
            << Sc.Name << " call at node " << N << " state "
            << S.str(*Prog);
        ++Checked;
      }
      EXPECT_GT(Checked, 10u) << Sc.Name;
    }
  }
}

TEST(CallMappingTest, BindingAccessors) {
  std::unique_ptr<Program> Prog = parseProgram(R"(
    typestate File { start c; error e; }
    proc g(p, q) { q = new File; }
    proc main() { a = new File; a = g(a, a); }
  )");
  TsContext Ctx(*Prog, Prog->symbols().intern("File"));
  const Procedure &Main = Prog->proc(Prog->mainProc());
  const Command *Call = nullptr;
  for (NodeId N : Main.reachableRpo())
    if (Main.node(N).Cmd.Kind == CmdKind::Call)
      Call = &Main.node(N).Cmd;
  ASSERT_NE(Call, nullptr);

  CallBinding B(Ctx, Prog->mainProc(), *Call);
  Symbol A = Prog->symbols().intern("a");
  Symbol P = Prog->symbols().intern("p");
  Symbol Q = Prog->symbols().intern("q");

  EXPECT_EQ(B.formalsOf(A).size(), 2u);
  EXPECT_EQ(B.actualOf(P), A);
  EXPECT_EQ(B.actualOf(Q), A);
  // q is reassigned inside g, so p is the canonical formal.
  EXPECT_EQ(B.canonicalFormal(A), P);
  EXPECT_EQ(B.resultVar(), A);
  // a is both result and actual: its paths do not survive via renameBack.
  EXPECT_FALSE(B.renameBack(AccessPath(P)).isValid());
  // $ret maps to the result variable.
  EXPECT_EQ(B.renameBack(AccessPath(B.retVar())), AccessPath(A));
}

} // namespace
