//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the swift-serve incremental engine: dependency-driven
/// invalidation (an edit to one leaf re-analyzes strictly fewer
/// procedures than a from-scratch run — the PR's acceptance assertion),
/// transactional edit rejection, per-request budget enforcement, the
/// summary store round trip, the JSON request loop, an
/// incremental-vs-from-scratch coincidence sweep over generated edit
/// sequences, the crash-durable edit journal (framing, torn-tail repair,
/// crash-replay recovery, compaction), and the overload protections
/// (request deadlines, admission-gate shedding, graceful drain).
///
//===----------------------------------------------------------------------===//

#include "serve/EditGen.h"
#include "serve/Engine.h"
#include "serve/Journal.h"
#include "serve/Server.h"
#include "serve/Store.h"

#include "genprog/Fuzzer.h"
#include "ir/Dumper.h"

#include "gtest/gtest.h"

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace swift;
using namespace swift::serve;

namespace {

/// main -> {f, g}; f allocates @0 and passes it to leaf h (opens it,
/// legal); g allocates @1 and closes it from the initial state (error).
/// Editing g must leave f's and h's summaries untouched.
const char *DiamondText = R"(# swift-ir v1
typestate File {
  states closed opened err
  init closed
  error err
  method close = err closed err
  method open = opened err err
}
proc h(x) entry 0 exit 1 nodes 3 {
  0: nop -> 2
  1: nop ->
  2: x.open() -> 1
}
proc f() entry 0 exit 1 nodes 4 {
  0: nop -> 2
  1: nop ->
  2: v = new File @0 -> 3
  3: call h(v) -> 1
}
proc g() entry 0 exit 1 nodes 4 {
  0: nop -> 2
  1: nop ->
  2: w = new File @1 -> 3
  3: w.close() -> 1
}
proc main() entry 0 exit 1 nodes 4 {
  0: nop -> 2
  1: nop ->
  2: call f() -> 3
  3: call g() -> 1
}
main main
)";

std::string gBlockWith(const ServeEngine &E, const std::string &OldCmd,
                       const std::string &NewCmd) {
  std::vector<ProcBlock> Blocks = procBlocks(E.programText());
  for (const ProcBlock &B : Blocks) {
    if (B.Name != "g")
      continue;
    std::string Body =
        E.programText().substr(B.Begin, B.End - B.Begin);
    size_t At = Body.find(OldCmd);
    EXPECT_NE(At, std::string::npos);
    Body.replace(At, OldCmd.size(), NewCmd);
    return Body;
  }
  ADD_FAILURE() << "no proc g in canonical text";
  return {};
}

std::string tempPath(const char *Name) {
  return ::testing::TempDir() + Name;
}

std::string readAll(const std::string &Path) {
  std::ifstream IS(Path, std::ios::binary);
  std::ostringstream Buf;
  Buf << IS.rdbuf();
  return Buf.str();
}

void writeAll(const std::string &Path, const std::string &Bytes) {
  std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
  OS << Bytes;
}

TEST(ServeEngine, InitialSolveFindsTheErrorSite) {
  ServeEngine E(DiamondText, EngineOptions());
  EditResult R = E.solveInitial();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(E.solved());
  EXPECT_EQ(R.Reanalyzed, 4u);
  EXPECT_EQ(E.errorSites(), std::set<SiteId>{1});
  EXPECT_EQ(E.verdict(0), TsVerdict::Proved);
  EXPECT_EQ(E.verdict(1), TsVerdict::ErrorReported);
  EXPECT_TRUE(E.trackedSite(0));
  EXPECT_FALSE(E.trackedSite(99));
}

TEST(ServeEngine, LeafEditReanalyzesStrictlyFewerProcsThanScratch) {
  ServeEngine E(DiamondText, EngineOptions());
  ASSERT_TRUE(E.solveInitial().Ok);

  EditResult R =
      E.applyEdit("g", gBlockWith(E, "3: w.close() -> 1", "3: nop -> 1"));
  ASSERT_TRUE(R.Ok) << R.Error;

  // The acceptance assertion: only g and its dependents (main) re-ran;
  // f and h carried across. From scratch would re-run all 4.
  EXPECT_EQ(R.Invalidated, 2u);
  EXPECT_EQ(R.Reanalyzed, 2u);
  EXPECT_EQ(R.Reused, 2u);
  EXPECT_LT(R.Reanalyzed, E.numProcs());

  // And the verdicts match a from-scratch run on the edited program.
  EXPECT_TRUE(E.errorSites().empty());
  ServeEngine Fresh(E.programText(), EngineOptions());
  ASSERT_TRUE(Fresh.solveInitial().Ok);
  EXPECT_EQ(Fresh.errorSites(), E.errorSites());
  EXPECT_EQ(Fresh.programText(), E.programText());
}

TEST(ServeEngine, RejectedEditsLeaveTheEngineUntouched) {
  ServeEngine E(DiamondText, EngineOptions());
  ASSERT_TRUE(E.solveInitial().Ok);
  const std::string Before = E.programText();

  // Unknown procedure.
  EXPECT_FALSE(E.applyEdit("nosuch", "proc nosuch() {}").Ok);
  // Unparseable body.
  EXPECT_FALSE(E.applyEdit("g", "proc g() entry 0 {{{").Ok);
  // Renaming the procedure is not a replacement.
  std::string Renamed = gBlockWith(E, "proc g()", "proc g2()");
  EXPECT_FALSE(E.applyEdit("g", Renamed).Ok);

  EXPECT_EQ(E.programText(), Before);
  EXPECT_TRUE(E.solved());
  EXPECT_EQ(E.errorSites(), std::set<SiteId>{1});

  // A valid edit still goes through after the rejections.
  EXPECT_TRUE(
      E.applyEdit("g", gBlockWith(E, "3: w.close() -> 1", "3: nop -> 1"))
          .Ok);
  EXPECT_TRUE(E.errorSites().empty());
}

TEST(ServeEngine, BudgetExhaustionIsReportedAndTransactional) {
  EngineOptions Small;
  Small.MaxStepsPerRequest = 1;
  ServeEngine E(DiamondText, Small);
  EditResult R = E.solveInitial();
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.BudgetExhausted);
  EXPECT_FALSE(E.solved());
  EXPECT_EQ(E.verdict(1), TsVerdict::Unresolved);

  // The same engine succeeds once the per-request budget is lifted
  // through a fresh instance (options are fixed at construction).
  ServeEngine Big(DiamondText, EngineOptions());
  EXPECT_TRUE(Big.solveInitial().Ok);
}

TEST(ServeStore, RoundTripWarmStartReusesEverySummary) {
  std::string Path = tempPath("serve_store_roundtrip.bin");
  std::set<SiteId> ColdErrors;
  std::string ColdText;
  {
    ServeEngine E(DiamondText, EngineOptions());
    ASSERT_TRUE(E.solveInitial().Ok);
    ColdErrors = E.errorSites();
    ColdText = E.programText();
    E.saveStore(Path);
  }
  ServeEngine W(ServeEngine::FromStore{Path}, EngineOptions());
  EditResult R = W.solveInitial();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Reanalyzed, 0u);
  EXPECT_EQ(R.Reused, 4u);
  EXPECT_EQ(W.errorSites(), ColdErrors);
  EXPECT_EQ(W.programText(), ColdText);
  std::remove(Path.c_str());
}

TEST(ServeStore, CorruptStoreIsRejected) {
  std::string Path = tempPath("serve_store_corrupt.bin");
  {
    ServeEngine E(DiamondText, EngineOptions());
    ASSERT_TRUE(E.solveInitial().Ok);
    E.saveStore(Path);
  }
  // Flip one payload byte; the CRC trailer must catch it.
  ParsedStore Good = loadStoreFile(Path);
  std::string Bytes;
  {
    std::ifstream IS(Path, std::ios::binary);
    std::ostringstream Buf;
    Buf << IS.rdbuf();
    Bytes = Buf.str();
  }
  Bytes[Bytes.size() / 2] ^= 0x20;
  {
    std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
    OS << Bytes;
  }
  EXPECT_THROW(loadStoreFile(Path), StoreError);
  std::remove(Path.c_str());
}

TEST(ServeStore, SummaryCodecRoundTripsAcrossPrograms) {
  ServeEngine E(DiamondText, EngineOptions());
  ASSERT_TRUE(E.solveInitial().Ok);
  // Encode against the engine's program, decode into a freshly parsed
  // copy (different Symbol ids), re-encode: the texts must agree.
  std::unique_ptr<Program> Copy = parseProgramText(E.programText());
  std::vector<ProcBlock> Blocks = procBlocks(E.programText());
  ASSERT_FALSE(Blocks.empty());
  std::string Path = tempPath("serve_store_codec.bin");
  E.saveStore(Path);
  ParsedStore S = loadStoreFile(Path);
  for (const StoredProc &P : S.Procs) {
    if (!P.HasSummary)
      continue;
    std::string T1 = summaryToText(*S.Prog, P.Sum);
    TsSummary Re = parseSummaryText(*Copy, T1);
    EXPECT_EQ(summaryToText(*Copy, Re), T1) << "proc " << P.Name;
  }
  std::remove(Path.c_str());
}

TEST(ServeServer, ProtocolSessionSurvivesMalformedRequests) {
  ServeEngine E(DiamondText, EngineOptions());
  ASSERT_TRUE(E.solveInitial().Ok);

  std::istringstream In(
      "{\"op\":\"stats\"}\n"
      "not json at all\n"
      "{\"op\":\"query\",\"site\":1}\n"
      "{\"op\":\"query\"}\n"
      "{\"op\":\"frobnicate\"}\n"
      "{\"op\":\"query_all\"}\n"
      "{\"op\":\"shutdown\"}\n"
      "{\"op\":\"stats\"}\n"); // after shutdown: must not be answered
  std::ostringstream Out;
  EXPECT_EQ(serveLines(E, In, Out), 0);

  std::istringstream Lines(Out.str());
  std::string L;
  ASSERT_TRUE(std::getline(Lines, L));
  EXPECT_NE(L.find("\"procs\":4"), std::string::npos);
  ASSERT_TRUE(std::getline(Lines, L));
  EXPECT_NE(L.find("\"ok\":false"), std::string::npos);
  ASSERT_TRUE(std::getline(Lines, L));
  EXPECT_NE(L.find("\"verdict\":\"error\""), std::string::npos);
  ASSERT_TRUE(std::getline(Lines, L));
  EXPECT_NE(L.find("\"ok\":false"), std::string::npos);
  ASSERT_TRUE(std::getline(Lines, L));
  EXPECT_NE(L.find("unknown op"), std::string::npos);
  ASSERT_TRUE(std::getline(Lines, L));
  EXPECT_NE(L.find("\"error_sites\":[1]"), std::string::npos);
  ASSERT_TRUE(std::getline(Lines, L));
  EXPECT_NE(L.find("\"ok\":true"), std::string::npos);
  EXPECT_FALSE(std::getline(Lines, L)) << "served past shutdown: " << L;
}

TEST(ServeServer, EditThroughTheProtocolUpdatesVerdicts) {
  ServeEngine E(DiamondText, EngineOptions());
  ASSERT_TRUE(E.solveInitial().Ok);
  std::string Body = gBlockWith(E, "3: w.close() -> 1", "3: nop -> 1");
  // JSON-escape the body (quotes cannot appear in swift-ir text).
  std::string Escaped;
  for (char C : Body)
    if (C == '\n')
      Escaped += "\\n";
    else
      Escaped += C;
  std::istringstream In("{\"op\":\"edit\",\"proc\":\"g\",\"body\":\"" +
                        Escaped + "\"}\n{\"op\":\"query_all\"}\n");
  std::ostringstream Out;
  EXPECT_EQ(serveLines(E, In, Out), 0);
  EXPECT_NE(Out.str().find("\"reused\":2"), std::string::npos);
  EXPECT_NE(Out.str().find("\"error_sites\":[]"), std::string::npos);
}

TEST(ServeIncremental, EditSequencesCoincideWithFromScratch) {
  // A quick local slice of the difftest oracle: apply generated edit
  // chains to fuzz programs and demand verdict coincidence with a
  // from-scratch engine on the final text (the CI campaign runs 40+
  // seeds through swift-difftest's incremental-coincidence check).
  // Small programs and a tight relation cap: relation blow-up seeds are
  // skipped exactly like the BU-agreement oracle skips BU timeouts.
  EngineOptions EO;
  EO.MaxRelsPerPoint = 1 << 12;
  unsigned Edited = 0, Solved = 0;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    FuzzConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.NumProcs = 3;
    Cfg.StmtsPerProc = 6;
    Cfg.NumVars = 3;
    Cfg.MaxDepth = 1;
    std::unique_ptr<Program> Prog = generateFuzzProgram(Cfg);
    ServeEngine E(programToText(*Prog), EO);
    if (!E.solveInitial().Ok)
      continue; // relation blow-up: not an incremental-engine defect
    ++Solved;
    for (uint64_t K = 0; K != 3; ++K) {
      std::optional<FuzzEdit> Edit =
          makeFuzzEdit(E.programText(), Seed, K);
      if (!Edit)
        break;
      EditResult R = E.applyEdit(Edit->ProcName, Edit->Body);
      if (R.BudgetExhausted)
        continue; // transactional: state unchanged, next edit is fine
      ASSERT_TRUE(R.Ok) << "seed " << Seed << " edit " << K << ": "
                        << R.Error;
      ++Edited;
    }
    ServeEngine Fresh(E.programText(), EO);
    if (!Fresh.solveInitial().Ok)
      continue; // the final program itself blows up from scratch
    EXPECT_EQ(Fresh.errorSites(), E.errorSites()) << "seed " << Seed;
    for (SiteId S = 0; S != E.program().numSites(); ++S)
      EXPECT_EQ(Fresh.verdict(S), E.verdict(S))
          << "seed " << Seed << " site " << S;
  }
  EXPECT_GT(Solved, 0u) << "every fuzz seed blew up";
  EXPECT_GT(Edited, 0u) << "edit generator produced nothing";
}

TEST(ServeEditGen, IsDeterministicAndStructurePreserving) {
  ServeEngine E(DiamondText, EngineOptions());
  for (uint64_t K = 0; K != 16; ++K) {
    std::optional<FuzzEdit> A = makeFuzzEdit(E.programText(), 7, K);
    std::optional<FuzzEdit> B = makeFuzzEdit(E.programText(), 7, K);
    ASSERT_TRUE(A.has_value());
    ASSERT_TRUE(B.has_value());
    EXPECT_EQ(A->ProcName, B->ProcName);
    EXPECT_EQ(A->Body, B->Body);
    // Never an alloc rewrite: both sites survive every generated edit.
    EXPECT_NE(A->Body.find("proc " + A->ProcName), std::string::npos);
  }
}

TEST(ServeJournal, AppendReplayRoundTripMatchesTheEncoding) {
  std::string Path = tempPath("serve_journal_roundtrip.log");
  std::remove(Path.c_str());
  Journal J(Path);
  EXPECT_TRUE(J.replayAndRepair().empty()); // missing file = empty log

  Journal::Record A{"f", "proc f() entry 0 exit 1 nodes 2 {\n}\n"};
  Journal::Record B{"g", "body with\nembedded newlines\n"};
  J.append(A);
  J.append(B);

  // The on-disk bytes are exactly magic + encodeRecord per record — the
  // contract the crash harness's byte-prefix checks rely on.
  EXPECT_EQ(readAll(Path), std::string(Journal::Magic) +
                               Journal::encodeRecord(A) +
                               Journal::encodeRecord(B));

  std::vector<Journal::Record> R = J.replayAndRepair();
  ASSERT_EQ(R.size(), 2u);
  EXPECT_EQ(R[0].ProcName, "f");
  EXPECT_EQ(R[0].Body, A.Body);
  EXPECT_EQ(R[1].ProcName, "g");
  EXPECT_EQ(R[1].Body, B.Body);
  std::remove(Path.c_str());
}

TEST(ServeJournal, TornTailIsTruncatedAndReplayIsStable) {
  std::string Path = tempPath("serve_journal_torn.log");
  std::remove(Path.c_str());
  Journal J(Path);
  J.append({"f", "first\n"});
  J.append({"g", "second\n"});
  const std::string Intact = readAll(Path);

  // A kill mid-append leaves a record prefix; replay must cut it off.
  std::string Torn = Journal::encodeRecord({"h", "never finished\n"});
  {
    std::ofstream OS(Path, std::ios::binary | std::ios::app);
    OS << Torn.substr(0, Torn.size() / 2);
  }
  std::vector<Journal::Record> R = J.replayAndRepair();
  ASSERT_EQ(R.size(), 2u);
  EXPECT_EQ(R[1].ProcName, "g");
  EXPECT_EQ(readAll(Path), Intact) << "torn tail not truncated off";

  // Repair is idempotent, and the repaired log appends normally again.
  EXPECT_EQ(J.replayAndRepair().size(), 2u);
  J.append({"h", "third\n"});
  EXPECT_EQ(J.replayAndRepair().size(), 3u);
  std::remove(Path.c_str());
}

TEST(ServeJournal, CorruptFrameEndsTheScanAtTheLastValidRecord) {
  std::string Path = tempPath("serve_journal_corrupt.log");
  std::remove(Path.c_str());
  Journal J(Path);
  J.append({"f", "only record\n"});
  std::string Bytes = readAll(Path);
  Bytes[Journal::Magic.size() + 8] ^= 0x20; // inside the record frame
  writeAll(Path, Bytes);
  EXPECT_TRUE(J.replayAndRepair().empty());
  EXPECT_EQ(readAll(Path), std::string(Journal::Magic));
  std::remove(Path.c_str());
}

TEST(ServeJournal, WrongMagicIsATypedLoadError) {
  std::string Path = tempPath("serve_journal_badmagic.log");
  writeAll(Path, "not a journal at all\nedit 1 1\nab...\n");
  Journal J(Path);
  EXPECT_THROW(J.replayAndRepair(), JournalLoadError);
  // And the unusable file was left alone for the operator to inspect.
  EXPECT_NE(readAll(Path).find("not a journal"), std::string::npos);
  std::remove(Path.c_str());
}

TEST(ServeEngine, JournaledEditsSurviveACrashAndCompactionFoldsThem) {
  std::string Store = tempPath("serve_wal_store.bin");
  std::string Log = tempPath("serve_wal_journal.log");
  std::remove(Store.c_str());
  std::remove(Log.c_str());
  EngineOptions EO;
  EO.StorePath = Store;
  EO.JournalPath = Log;

  std::string EditedText;
  {
    ServeEngine E(DiamondText, EO);
    ASSERT_TRUE(E.solveInitial().Ok); // auto-saves the baseline store
    E.resetJournal();                 // cold start: fresh log
    ASSERT_TRUE(
        E.applyEdit("g", gBlockWith(E, "3: w.close() -> 1", "3: nop -> 1"))
            .Ok);
    EXPECT_TRUE(E.errorSites().empty());
    EditedText = E.programText();
    // No save, no compaction: the daemon "crashes" here. The edit was
    // acknowledged, so it must be journaled already.
  }

  ServeEngine R(ServeEngine::FromStore{Store}, EO);
  ASSERT_TRUE(R.solveInitial().Ok);
  EXPECT_EQ(R.errorSites(), std::set<SiteId>{1}) // store = pre-edit
      << "store snapshot should not contain the unjournaled-only edit";
  size_t Replayed = 0;
  EditResult Rep = R.replayJournal(&Replayed);
  ASSERT_TRUE(Rep.Ok) << Rep.Error;
  EXPECT_EQ(Replayed, 1u);
  EXPECT_TRUE(R.errorSites().empty());
  EXPECT_EQ(R.programText(), EditedText);

  // Compaction folds the log into the store and resets it; a second
  // warm start then replays nothing and still sees the edited program.
  R.compact();
  EXPECT_EQ(readAll(Log), std::string(Journal::Magic));
  ServeEngine R2(ServeEngine::FromStore{Store}, EO);
  ASSERT_TRUE(R2.solveInitial().Ok);
  size_t Replayed2 = 99;
  ASSERT_TRUE(R2.replayJournal(&Replayed2).Ok);
  EXPECT_EQ(Replayed2, 0u);
  EXPECT_TRUE(R2.errorSites().empty());
  EXPECT_EQ(R2.programText(), EditedText);
  std::remove(Store.c_str());
  std::remove(Log.c_str());
}

TEST(ServeEngine, DeadlineExceededYieldsSoundDegradedAnswer) {
  std::string Store = tempPath("serve_deadline_store.bin");
  std::remove(Store.c_str());
  {
    ServeEngine E(DiamondText, EngineOptions());
    ASSERT_TRUE(E.solveInitial().Ok);
    E.saveStore(Store);
  }
  // MaxSteps=1 makes any re-analysis deterministically exhaust its
  // budget; the warm start itself reuses every summary, so it fits.
  EngineOptions Tight;
  Tight.MaxStepsPerRequest = 1;
  ServeEngine E(ServeEngine::FromStore{Store}, Tight);
  ASSERT_TRUE(E.solveInitial().Ok);

  std::string Body = gBlockWith(E, "3: w.close() -> 1", "3: nop -> 1");
  EditResult R = E.applyEdit("g", Body, /*DeadlineMs=*/1000);
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.BudgetExhausted);
  EXPECT_TRUE(R.Degraded) << "deadline-bounded failure must be degraded";
  EXPECT_NE(R.Error.find("sound"), std::string::npos);

  // The same exhaustion without a deadline is a plain budget failure.
  EditResult R2 = E.applyEdit("g", Body);
  EXPECT_FALSE(R2.Ok);
  EXPECT_TRUE(R2.BudgetExhausted);
  EXPECT_FALSE(R2.Degraded);

  // Soundness of the degraded answer: pre-edit verdicts still served.
  EXPECT_EQ(E.errorSites(), std::set<SiteId>{1});
  EXPECT_EQ(E.verdict(1), TsVerdict::ErrorReported);

  // EngineOptions::RequestDeadlineMs is the per-request default.
  EngineOptions Deadlined = Tight;
  Deadlined.RequestDeadlineMs = 750;
  ServeEngine D(ServeEngine::FromStore{Store}, Deadlined);
  ASSERT_TRUE(D.solveInitial().Ok);
  EditResult R3 = D.applyEdit("g", Body);
  EXPECT_FALSE(R3.Ok);
  EXPECT_TRUE(R3.Degraded);
  std::remove(Store.c_str());
}

TEST(ServeServer, BudgetExhaustionLatchesTheAdmissionGate) {
  std::string Store = tempPath("serve_shed_store.bin");
  std::remove(Store.c_str());
  {
    ServeEngine E(DiamondText, EngineOptions());
    ASSERT_TRUE(E.solveInitial().Ok);
    E.saveStore(Store);
  }
  EngineOptions Tight;
  Tight.MaxStepsPerRequest = 1;
  ServeEngine E(ServeEngine::FromStore{Store}, Tight);
  ASSERT_TRUE(E.solveInitial().Ok);

  std::string Body = gBlockWith(E, "3: w.close() -> 1", "3: nop -> 1");
  std::string Escaped;
  for (char C : Body)
    if (C == '\n')
      Escaped += "\\n";
    else
      Escaped += C;
  std::string Edit =
      "{\"op\":\"edit\",\"proc\":\"g\",\"body\":\"" + Escaped + "\"}\n";

  ServeLimits SL;
  SL.ShedCooldownMs = 60'000; // latch outlives this test once armed
  std::istringstream In(Edit + Edit + "{\"op\":\"query\",\"site\":1}\n" +
                        "{\"op\":\"shutdown\"}\n");
  std::ostringstream Out;
  EXPECT_EQ(serveLines(E, In, Out, SL), 0);

  std::istringstream Lines(Out.str());
  std::string L;
  ASSERT_TRUE(std::getline(Lines, L)); // first edit: ran, exhausted
  EXPECT_NE(L.find("\"budget_exhausted\":true"), std::string::npos);
  ASSERT_TRUE(std::getline(Lines, L)); // second edit: shed, not run
  EXPECT_NE(L.find("\"code\":\"retry\""), std::string::npos);
  ASSERT_TRUE(std::getline(Lines, L)); // queries are never shed
  EXPECT_NE(L.find("\"verdict\":\"error\""), std::string::npos);
  std::remove(Store.c_str());
}

TEST(ServeServer, QueuePressureShedsEditsButNeverQueries) {
  ServeEngine E(DiamondText, EngineOptions());
  ASSERT_TRUE(E.solveInitial().Ok);
  ServeLimits SL;
  SL.MaxPendingBytes = 8; // the padding below dwarfs this
  std::string Pad(4096, ' ');
  std::istringstream In("{\"op\":\"fuzz_edit\",\"seed\":3,\"k\":0}\n" +
                        Pad + "\n" + Pad + "\n" +
                        "{\"op\":\"query\",\"site\":1}\n"
                        "{\"op\":\"shutdown\"}\n");
  std::ostringstream Out;
  EXPECT_EQ(serveLines(E, In, Out, SL), 0);

  std::istringstream Lines(Out.str());
  std::string L;
  ASSERT_TRUE(std::getline(Lines, L)); // edit under pressure: shed
  EXPECT_NE(L.find("\"code\":\"retry\""), std::string::npos);
  // Whitespace-only pad lines get no response; the query (now the
  // near-empty tail of the queue) is served normally.
  ASSERT_TRUE(std::getline(Lines, L));
  EXPECT_NE(L.find("\"verdict\":\"error\""), std::string::npos);
}

TEST(ServeServer, DrainFinishesTheInFlightRequestThenExits) {
  ServeEngine E(DiamondText, EngineOptions());
  ASSERT_TRUE(E.solveInitial().Ok);
  std::atomic<bool> Drain{true}; // the signal has already arrived
  ServeLimits SL;
  SL.Drain = &Drain;
  std::istringstream In("{\"op\":\"stats\"}\n{\"op\":\"query_all\"}\n");
  std::ostringstream Out;
  EXPECT_EQ(serveLines(E, In, Out, SL), 0);

  // The in-flight request was answered, the drain line closed the
  // session, and the queued query_all was never served.
  std::istringstream Lines(Out.str());
  std::string L;
  ASSERT_TRUE(std::getline(Lines, L));
  EXPECT_NE(L.find("\"procs\":4"), std::string::npos);
  ASSERT_TRUE(std::getline(Lines, L));
  EXPECT_NE(L.find("\"drain\":true"), std::string::npos);
  EXPECT_FALSE(std::getline(Lines, L)) << "served past drain: " << L;

  // A line the closed fd cut short (no newline, eofbit) was never fully
  // sent: it is discarded, not half-parsed.
  std::istringstream In2("{\"op\":\"stats\"");
  std::ostringstream Out2;
  EXPECT_EQ(serveLines(E, In2, Out2, SL), 0);
  // Exactly one line came out — the drain stats, not a response to the
  // truncated request.
  std::istringstream Lines2(Out2.str());
  ASSERT_TRUE(std::getline(Lines2, L));
  EXPECT_NE(L.find("\"drain\":true"), std::string::npos);
  EXPECT_FALSE(std::getline(Lines2, L)) << "answered a torn line: " << L;
}

} // namespace
