//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests for the swift-serve incremental engine: dependency-driven
/// invalidation (an edit to one leaf re-analyzes strictly fewer
/// procedures than a from-scratch run — the PR's acceptance assertion),
/// transactional edit rejection, per-request budget enforcement, the
/// summary store round trip, the JSON request loop, and an
/// incremental-vs-from-scratch coincidence sweep over generated edit
/// sequences.
///
//===----------------------------------------------------------------------===//

#include "serve/EditGen.h"
#include "serve/Engine.h"
#include "serve/Server.h"
#include "serve/Store.h"

#include "genprog/Fuzzer.h"
#include "ir/Dumper.h"

#include "gtest/gtest.h"

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

using namespace swift;
using namespace swift::serve;

namespace {

/// main -> {f, g}; f allocates @0 and passes it to leaf h (opens it,
/// legal); g allocates @1 and closes it from the initial state (error).
/// Editing g must leave f's and h's summaries untouched.
const char *DiamondText = R"(# swift-ir v1
typestate File {
  states closed opened err
  init closed
  error err
  method close = err closed err
  method open = opened err err
}
proc h(x) entry 0 exit 1 nodes 3 {
  0: nop -> 2
  1: nop ->
  2: x.open() -> 1
}
proc f() entry 0 exit 1 nodes 4 {
  0: nop -> 2
  1: nop ->
  2: v = new File @0 -> 3
  3: call h(v) -> 1
}
proc g() entry 0 exit 1 nodes 4 {
  0: nop -> 2
  1: nop ->
  2: w = new File @1 -> 3
  3: w.close() -> 1
}
proc main() entry 0 exit 1 nodes 4 {
  0: nop -> 2
  1: nop ->
  2: call f() -> 3
  3: call g() -> 1
}
main main
)";

std::string gBlockWith(const ServeEngine &E, const std::string &OldCmd,
                       const std::string &NewCmd) {
  std::vector<ProcBlock> Blocks = procBlocks(E.programText());
  for (const ProcBlock &B : Blocks) {
    if (B.Name != "g")
      continue;
    std::string Body =
        E.programText().substr(B.Begin, B.End - B.Begin);
    size_t At = Body.find(OldCmd);
    EXPECT_NE(At, std::string::npos);
    Body.replace(At, OldCmd.size(), NewCmd);
    return Body;
  }
  ADD_FAILURE() << "no proc g in canonical text";
  return {};
}

std::string tempPath(const char *Name) {
  return ::testing::TempDir() + Name;
}

TEST(ServeEngine, InitialSolveFindsTheErrorSite) {
  ServeEngine E(DiamondText, EngineOptions());
  EditResult R = E.solveInitial();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_TRUE(E.solved());
  EXPECT_EQ(R.Reanalyzed, 4u);
  EXPECT_EQ(E.errorSites(), std::set<SiteId>{1});
  EXPECT_EQ(E.verdict(0), TsVerdict::Proved);
  EXPECT_EQ(E.verdict(1), TsVerdict::ErrorReported);
  EXPECT_TRUE(E.trackedSite(0));
  EXPECT_FALSE(E.trackedSite(99));
}

TEST(ServeEngine, LeafEditReanalyzesStrictlyFewerProcsThanScratch) {
  ServeEngine E(DiamondText, EngineOptions());
  ASSERT_TRUE(E.solveInitial().Ok);

  EditResult R =
      E.applyEdit("g", gBlockWith(E, "3: w.close() -> 1", "3: nop -> 1"));
  ASSERT_TRUE(R.Ok) << R.Error;

  // The acceptance assertion: only g and its dependents (main) re-ran;
  // f and h carried across. From scratch would re-run all 4.
  EXPECT_EQ(R.Invalidated, 2u);
  EXPECT_EQ(R.Reanalyzed, 2u);
  EXPECT_EQ(R.Reused, 2u);
  EXPECT_LT(R.Reanalyzed, E.numProcs());

  // And the verdicts match a from-scratch run on the edited program.
  EXPECT_TRUE(E.errorSites().empty());
  ServeEngine Fresh(E.programText(), EngineOptions());
  ASSERT_TRUE(Fresh.solveInitial().Ok);
  EXPECT_EQ(Fresh.errorSites(), E.errorSites());
  EXPECT_EQ(Fresh.programText(), E.programText());
}

TEST(ServeEngine, RejectedEditsLeaveTheEngineUntouched) {
  ServeEngine E(DiamondText, EngineOptions());
  ASSERT_TRUE(E.solveInitial().Ok);
  const std::string Before = E.programText();

  // Unknown procedure.
  EXPECT_FALSE(E.applyEdit("nosuch", "proc nosuch() {}").Ok);
  // Unparseable body.
  EXPECT_FALSE(E.applyEdit("g", "proc g() entry 0 {{{").Ok);
  // Renaming the procedure is not a replacement.
  std::string Renamed = gBlockWith(E, "proc g()", "proc g2()");
  EXPECT_FALSE(E.applyEdit("g", Renamed).Ok);

  EXPECT_EQ(E.programText(), Before);
  EXPECT_TRUE(E.solved());
  EXPECT_EQ(E.errorSites(), std::set<SiteId>{1});

  // A valid edit still goes through after the rejections.
  EXPECT_TRUE(
      E.applyEdit("g", gBlockWith(E, "3: w.close() -> 1", "3: nop -> 1"))
          .Ok);
  EXPECT_TRUE(E.errorSites().empty());
}

TEST(ServeEngine, BudgetExhaustionIsReportedAndTransactional) {
  EngineOptions Small;
  Small.MaxStepsPerRequest = 1;
  ServeEngine E(DiamondText, Small);
  EditResult R = E.solveInitial();
  EXPECT_FALSE(R.Ok);
  EXPECT_TRUE(R.BudgetExhausted);
  EXPECT_FALSE(E.solved());
  EXPECT_EQ(E.verdict(1), TsVerdict::Unresolved);

  // The same engine succeeds once the per-request budget is lifted
  // through a fresh instance (options are fixed at construction).
  ServeEngine Big(DiamondText, EngineOptions());
  EXPECT_TRUE(Big.solveInitial().Ok);
}

TEST(ServeStore, RoundTripWarmStartReusesEverySummary) {
  std::string Path = tempPath("serve_store_roundtrip.bin");
  std::set<SiteId> ColdErrors;
  std::string ColdText;
  {
    ServeEngine E(DiamondText, EngineOptions());
    ASSERT_TRUE(E.solveInitial().Ok);
    ColdErrors = E.errorSites();
    ColdText = E.programText();
    E.saveStore(Path);
  }
  ServeEngine W(ServeEngine::FromStore{Path}, EngineOptions());
  EditResult R = W.solveInitial();
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_EQ(R.Reanalyzed, 0u);
  EXPECT_EQ(R.Reused, 4u);
  EXPECT_EQ(W.errorSites(), ColdErrors);
  EXPECT_EQ(W.programText(), ColdText);
  std::remove(Path.c_str());
}

TEST(ServeStore, CorruptStoreIsRejected) {
  std::string Path = tempPath("serve_store_corrupt.bin");
  {
    ServeEngine E(DiamondText, EngineOptions());
    ASSERT_TRUE(E.solveInitial().Ok);
    E.saveStore(Path);
  }
  // Flip one payload byte; the CRC trailer must catch it.
  ParsedStore Good = loadStoreFile(Path);
  std::string Bytes;
  {
    std::ifstream IS(Path, std::ios::binary);
    std::ostringstream Buf;
    Buf << IS.rdbuf();
    Bytes = Buf.str();
  }
  Bytes[Bytes.size() / 2] ^= 0x20;
  {
    std::ofstream OS(Path, std::ios::binary | std::ios::trunc);
    OS << Bytes;
  }
  EXPECT_THROW(loadStoreFile(Path), StoreError);
  std::remove(Path.c_str());
}

TEST(ServeStore, SummaryCodecRoundTripsAcrossPrograms) {
  ServeEngine E(DiamondText, EngineOptions());
  ASSERT_TRUE(E.solveInitial().Ok);
  // Encode against the engine's program, decode into a freshly parsed
  // copy (different Symbol ids), re-encode: the texts must agree.
  std::unique_ptr<Program> Copy = parseProgramText(E.programText());
  std::vector<ProcBlock> Blocks = procBlocks(E.programText());
  ASSERT_FALSE(Blocks.empty());
  std::string Path = tempPath("serve_store_codec.bin");
  E.saveStore(Path);
  ParsedStore S = loadStoreFile(Path);
  for (const StoredProc &P : S.Procs) {
    if (!P.HasSummary)
      continue;
    std::string T1 = summaryToText(*S.Prog, P.Sum);
    TsSummary Re = parseSummaryText(*Copy, T1);
    EXPECT_EQ(summaryToText(*Copy, Re), T1) << "proc " << P.Name;
  }
  std::remove(Path.c_str());
}

TEST(ServeServer, ProtocolSessionSurvivesMalformedRequests) {
  ServeEngine E(DiamondText, EngineOptions());
  ASSERT_TRUE(E.solveInitial().Ok);

  std::istringstream In(
      "{\"op\":\"stats\"}\n"
      "not json at all\n"
      "{\"op\":\"query\",\"site\":1}\n"
      "{\"op\":\"query\"}\n"
      "{\"op\":\"frobnicate\"}\n"
      "{\"op\":\"query_all\"}\n"
      "{\"op\":\"shutdown\"}\n"
      "{\"op\":\"stats\"}\n"); // after shutdown: must not be answered
  std::ostringstream Out;
  EXPECT_EQ(serveLines(E, In, Out), 0);

  std::istringstream Lines(Out.str());
  std::string L;
  ASSERT_TRUE(std::getline(Lines, L));
  EXPECT_NE(L.find("\"procs\":4"), std::string::npos);
  ASSERT_TRUE(std::getline(Lines, L));
  EXPECT_NE(L.find("\"ok\":false"), std::string::npos);
  ASSERT_TRUE(std::getline(Lines, L));
  EXPECT_NE(L.find("\"verdict\":\"error\""), std::string::npos);
  ASSERT_TRUE(std::getline(Lines, L));
  EXPECT_NE(L.find("\"ok\":false"), std::string::npos);
  ASSERT_TRUE(std::getline(Lines, L));
  EXPECT_NE(L.find("unknown op"), std::string::npos);
  ASSERT_TRUE(std::getline(Lines, L));
  EXPECT_NE(L.find("\"error_sites\":[1]"), std::string::npos);
  ASSERT_TRUE(std::getline(Lines, L));
  EXPECT_NE(L.find("\"ok\":true"), std::string::npos);
  EXPECT_FALSE(std::getline(Lines, L)) << "served past shutdown: " << L;
}

TEST(ServeServer, EditThroughTheProtocolUpdatesVerdicts) {
  ServeEngine E(DiamondText, EngineOptions());
  ASSERT_TRUE(E.solveInitial().Ok);
  std::string Body = gBlockWith(E, "3: w.close() -> 1", "3: nop -> 1");
  // JSON-escape the body (quotes cannot appear in swift-ir text).
  std::string Escaped;
  for (char C : Body)
    if (C == '\n')
      Escaped += "\\n";
    else
      Escaped += C;
  std::istringstream In("{\"op\":\"edit\",\"proc\":\"g\",\"body\":\"" +
                        Escaped + "\"}\n{\"op\":\"query_all\"}\n");
  std::ostringstream Out;
  EXPECT_EQ(serveLines(E, In, Out), 0);
  EXPECT_NE(Out.str().find("\"reused\":2"), std::string::npos);
  EXPECT_NE(Out.str().find("\"error_sites\":[]"), std::string::npos);
}

TEST(ServeIncremental, EditSequencesCoincideWithFromScratch) {
  // A quick local slice of the difftest oracle: apply generated edit
  // chains to fuzz programs and demand verdict coincidence with a
  // from-scratch engine on the final text (the CI campaign runs 40+
  // seeds through swift-difftest's incremental-coincidence check).
  // Small programs and a tight relation cap: relation blow-up seeds are
  // skipped exactly like the BU-agreement oracle skips BU timeouts.
  EngineOptions EO;
  EO.MaxRelsPerPoint = 1 << 12;
  unsigned Edited = 0, Solved = 0;
  for (uint64_t Seed = 1; Seed <= 8; ++Seed) {
    FuzzConfig Cfg;
    Cfg.Seed = Seed;
    Cfg.NumProcs = 3;
    Cfg.StmtsPerProc = 6;
    Cfg.NumVars = 3;
    Cfg.MaxDepth = 1;
    std::unique_ptr<Program> Prog = generateFuzzProgram(Cfg);
    ServeEngine E(programToText(*Prog), EO);
    if (!E.solveInitial().Ok)
      continue; // relation blow-up: not an incremental-engine defect
    ++Solved;
    for (uint64_t K = 0; K != 3; ++K) {
      std::optional<FuzzEdit> Edit =
          makeFuzzEdit(E.programText(), Seed, K);
      if (!Edit)
        break;
      EditResult R = E.applyEdit(Edit->ProcName, Edit->Body);
      if (R.BudgetExhausted)
        continue; // transactional: state unchanged, next edit is fine
      ASSERT_TRUE(R.Ok) << "seed " << Seed << " edit " << K << ": "
                        << R.Error;
      ++Edited;
    }
    ServeEngine Fresh(E.programText(), EO);
    if (!Fresh.solveInitial().Ok)
      continue; // the final program itself blows up from scratch
    EXPECT_EQ(Fresh.errorSites(), E.errorSites()) << "seed " << Seed;
    for (SiteId S = 0; S != E.program().numSites(); ++S)
      EXPECT_EQ(Fresh.verdict(S), E.verdict(S))
          << "seed " << Seed << " site " << S;
  }
  EXPECT_GT(Solved, 0u) << "every fuzz seed blew up";
  EXPECT_GT(Edited, 0u) << "edit generator produced nothing";
}

TEST(ServeEditGen, IsDeterministicAndStructurePreserving) {
  ServeEngine E(DiamondText, EngineOptions());
  for (uint64_t K = 0; K != 16; ++K) {
    std::optional<FuzzEdit> A = makeFuzzEdit(E.programText(), 7, K);
    std::optional<FuzzEdit> B = makeFuzzEdit(E.programText(), 7, K);
    ASSERT_TRUE(A.has_value());
    ASSERT_TRUE(B.has_value());
    EXPECT_EQ(A->ProcName, B->ProcName);
    EXPECT_EQ(A->Body, B->Body);
    // Never an alloc rewrite: both sites survive every generated edit.
    EXPECT_NE(A->Body.find("proc " + A->ProcName), std::string::npos);
  }
}

} // namespace
