#!/usr/bin/env bash
# CLI contract for swift-analyze error reporting:
#  * usage errors (unknown flag, bad value, malformed --failpoints) exit 2
#    AND print the usage text;
#  * malformed checkpoint input (--resume-from a corrupt/truncated file)
#    also exits 2 but says "malformed checkpoint ..." and does NOT print
#    the usage text — the input is broken, not the invocation;
#  * a '!kill' failpoint mid-save dies with exit 85 leaving no torn file.
#
# Usage: resume_errors.sh <swift-analyze> <corpus-dir>
set -u

analyze=$1
corpus=$2
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
fails=0

check() { # check <desc> <expected-rc> <actual-rc>
  if [ "$3" -ne "$2" ]; then
    echo "FAIL: $1: expected exit $2, got $3" >&2
    fails=$((fails + 1))
  fi
}
expect_grep() { # expect_grep <desc> <pattern> <file>
  if ! grep -q "$2" "$3"; then
    echo "FAIL: $1: output lacks '$2'" >&2
    cat "$3" >&2
    fails=$((fails + 1))
  fi
}
reject_grep() { # reject_grep <desc> <pattern> <file>
  if grep -q "$2" "$3"; then
    echo "FAIL: $1: output unexpectedly contains '$2'" >&2
    cat "$3" >&2
    fails=$((fails + 1))
  fi
}

prog=$(ls "$corpus"/*.swiftir | head -1)
[ -n "$prog" ] || { echo "no corpus program found" >&2; exit 1; }

# A real checkpoint to corrupt: exhaust the corpus program on a tiny
# budget (exit 3 = partial result, checkpoint written).
"$analyze" --steps=30 --checkpoint-out="$work/ck.swiftckpt" "$prog" \
  > /dev/null 2>&1
check "checkpoint-producing run" 3 $?
[ -s "$work/ck.swiftckpt" ] || { echo "no checkpoint written" >&2; exit 1; }

# 1. Usage error: unknown flag -> exit 2 WITH usage text.
"$analyze" --definitely-not-a-flag > /dev/null 2> "$work/usage.err"
check "unknown flag" 2 $?
expect_grep "unknown flag" "usage:" "$work/usage.err"

# 2. Usage error: malformed failpoint spec -> exit 2 WITH usage text.
"$analyze" --failpoints='oops' "$prog" > /dev/null 2> "$work/fp.err"
check "malformed failpoint spec" 2 $?
expect_grep "malformed failpoint spec" "usage:" "$work/fp.err"

# 3. Malformed input: bit-flipped checkpoint -> exit 2, a "malformed
#    checkpoint" diagnostic naming the file, and NO usage text.
old=$(dd if="$work/ck.swiftckpt" bs=1 skip=200 count=1 2>/dev/null)
rep=Z; [ "$old" = "Z" ] && rep=Y
{ head -c 200 "$work/ck.swiftckpt"; printf '%s' "$rep"
  tail -c +202 "$work/ck.swiftckpt"; } > "$work/flip.swiftckpt"
cmp -s "$work/ck.swiftckpt" "$work/flip.swiftckpt" && \
  { echo "corruption no-op; fix the test" >&2; exit 1; }
"$analyze" --resume-from="$work/flip.swiftckpt" > /dev/null \
  2> "$work/corrupt.err"
check "corrupt checkpoint" 2 $?
expect_grep "corrupt checkpoint" "malformed checkpoint" "$work/corrupt.err"
expect_grep "corrupt checkpoint" "flip.swiftckpt" "$work/corrupt.err"
reject_grep "corrupt checkpoint" "usage:" "$work/corrupt.err"

# 4. Malformed input: truncated checkpoint -> same contract.
head -c 100 "$work/ck.swiftckpt" > "$work/cut.swiftckpt"
"$analyze" --resume-from="$work/cut.swiftckpt" > /dev/null \
  2> "$work/cut.err"
check "truncated checkpoint" 2 $?
expect_grep "truncated checkpoint" "malformed checkpoint" "$work/cut.err"
reject_grep "truncated checkpoint" "usage:" "$work/cut.err"

# 5. Missing file -> malformed-input path too (typed IoError), not usage.
"$analyze" --resume-from="$work/nope.swiftckpt" > /dev/null \
  2> "$work/missing.err"
check "missing checkpoint" 2 $?
expect_grep "missing checkpoint" "malformed checkpoint" "$work/missing.err"
reject_grep "missing checkpoint" "usage:" "$work/missing.err"

# 6. Kill failpoint mid-save: exit 85 (injected crash), and the target
#    checkpoint path must not exist — no torn file.
rm -f "$work/killed.swiftckpt"
"$analyze" --steps=30 --checkpoint-out="$work/killed.swiftckpt" \
  --failpoints='ckpt.save.write=nth(1)!kill' "$prog" > /dev/null 2>&1
check "kill mid-save" 85 $?
if [ -e "$work/killed.swiftckpt" ]; then
  echo "FAIL: kill mid-save left a file at the target path" >&2
  fails=$((fails + 1))
fi

# 7. The good checkpoint still resumes to completion (exit 0).
"$analyze" --resume-from="$work/ck.swiftckpt" > /dev/null 2>&1
check "clean resume" 0 $?

if [ "$fails" -ne 0 ]; then
  echo "$fails CLI contract check(s) failed" >&2
  exit 1
fi
echo "all CLI resume-error contract checks passed"
