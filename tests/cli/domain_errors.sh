#!/usr/bin/env bash
# Strict-CLI contract for the --mode/--domain flags of swift-analyze (and
# the --domain flag of swift-difftest):
#  * an unknown value exits 2 AND the error names every valid value, so
#    the failure is actionable without opening the manual;
#  * every registered client domain actually runs in every mode through
#    the real binary (exit 0 on a tiny corpus program);
#  * --mode=bu without a client domain is rejected with the domain list.
#
# Usage: domain_errors.sh <swift-analyze> <swift-difftest> <corpus-dir>
set -u

analyze=$1
difftest=$2
corpus=$3
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
fails=0

check() { # check <desc> <expected-rc> <actual-rc>
  if [ "$3" -ne "$2" ]; then
    echo "FAIL: $1: expected exit $2, got $3" >&2
    fails=$((fails + 1))
  fi
}
expect_grep() { # expect_grep <desc> <pattern> <file>
  if ! grep -q "$2" "$3"; then
    echo "FAIL: $1: output lacks '$2'" >&2
    cat "$3" >&2
    fails=$((fails + 1))
  fi
}

prog="$corpus/clients/interval-guard.swiftir"

# --- unknown --mode lists the valid modes -------------------------------
"$analyze" --mode=bogus "$prog" >"$work/out" 2>&1
check "unknown --mode exits 2" 2 $?
expect_grep "unknown --mode names the value" "invalid --mode value 'bogus'" "$work/out"
expect_grep "unknown --mode lists valid values" "valid values: td, swift, bu" "$work/out"

# --- unknown --domain lists the registered domains ----------------------
"$analyze" --domain=bogus "$prog" >"$work/out" 2>&1
check "unknown --domain exits 2" 2 $?
expect_grep "unknown --domain names the value" "invalid --domain value 'bogus'" "$work/out"
expect_grep "unknown --domain lists valid values" \
  "valid values: typestate, taint, nullderef, reachdefs, interval" "$work/out"

# --- swift-difftest shares the contract ---------------------------------
"$difftest" --domain=bogus --seeds=1 >"$work/out" 2>&1
check "difftest unknown --domain exits 2" 2 $?
expect_grep "difftest lists valid values" \
  "valid values: typestate, taint, nullderef, reachdefs, interval" "$work/out"

# --- --mode=bu needs a client domain ------------------------------------
"$analyze" --mode=bu "$prog" >"$work/out" 2>&1
check "--mode=bu without client domain exits 2" 2 $?
expect_grep "bu rejection lists the client domains" \
  "valid domains: taint, nullderef, reachdefs, interval" "$work/out"

# --- checkpointing stays typestate-only ---------------------------------
"$analyze" --domain=taint --checkpoint-out="$work/ck" "$prog" >"$work/out" 2>&1
check "client domain + checkpoint exits 2" 2 $?
expect_grep "checkpoint rejection explains itself" \
  "checkpoint/resume supports only the typestate domain" "$work/out"

# --- every domain runs in every mode ------------------------------------
for domain in taint nullderef reachdefs interval; do
  for mode in td swift bu; do
    "$analyze" --domain=$domain --mode=$mode "$prog" >"$work/out" 2>&1
    check "$domain/$mode runs" 0 $?
    expect_grep "$domain/$mode reports completion" "$domain/$mode: complete" "$work/out"
  done
done

if [ "$fails" -ne 0 ]; then
  echo "$fails check(s) failed" >&2
  exit 1
fi
echo "all domain CLI checks passed"
