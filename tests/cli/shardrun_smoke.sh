#!/usr/bin/env bash
# swift-shardrun smoke through the real multi-process binaries:
#
#  1. a clean sharded run (K=4) reports exactly swift-analyze's error
#     sites and populates the spool with one segment per SCC,
#  2. rerunning over the populated spool stays complete and identical
#     (segments are reused, not recomputed into different bytes),
#  3. a worker killed mid-segment-save by a failpoint is restarted and
#     the recovered run's verdict lines are byte-identical to the clean
#     run's, with every surviving segment identical to the clean run's,
#  4. an every-incarnation kill drains the restart budget and degrades
#     to the governed fallback, still exiting 0 with the same verdicts,
#  5. usage errors (missing spool dir) exit 2.
#
# Usage: shardrun_smoke.sh <swift-shardrun> <swift-shard-worker> \
#        <swift-analyze> <program.swiftir>
set -u

shardrun=$1
worker=$2
analyze=$3
prog=$4
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
fails=0

fail() {
  echo "FAIL: $1" >&2
  fails=$((fails + 1))
}

sites() { # extract sorted "@N" error-site lines from a report
  grep -o 'error @[0-9]*' "$1" | grep -o '@[0-9]*' | sort
}

# Batch reference: swift-analyze's error sites.
"$analyze" "$prog" > "$work/batch.out" 2>/dev/null ||
  fail "swift-analyze exited $?"
sites "$work/batch.out" > "$work/batch.sites"

# 1. Clean sharded run.
mkdir -p "$work/spool"
"$shardrun" --shards=4 --worker-bin="$worker" --spool-dir="$work/spool" \
  "$prog" > "$work/clean.out" 2>"$work/clean.err"
rc=$?
[ "$rc" -eq 0 ] || { fail "clean shardrun exited $rc"; cat "$work/clean.err" >&2; }
grep -q '^shardrun: complete' "$work/clean.out" ||
  fail "clean run not reported complete: $(head -1 "$work/clean.out")"
sites "$work/clean.out" > "$work/clean.sites"
cmp -s "$work/batch.sites" "$work/clean.sites" ||
  fail "sharded error sites differ from swift-analyze's"
seg_count=$(ls "$work/spool"/seg-*.spool 2>/dev/null | wc -l)
[ "$seg_count" -ge 1 ] || fail "clean run published no spool segments"
grep '^verdicts:' "$work/clean.out" > "$work/clean.verdicts"

# 2. Rerun over the populated spool: identical report, identical bytes.
cp -r "$work/spool" "$work/spool.before"
"$shardrun" --shards=4 --worker-bin="$worker" --spool-dir="$work/spool" \
  "$prog" > "$work/rerun.out" 2>/dev/null
[ "$?" -eq 0 ] || fail "rerun over populated spool failed"
sites "$work/rerun.out" > "$work/rerun.sites"
cmp -s "$work/clean.sites" "$work/rerun.sites" || fail "rerun sites differ"
for seg in "$work/spool.before"/seg-*.spool; do
  cmp -s "$seg" "$work/spool/$(basename "$seg")" ||
    fail "rerun rewrote $(basename "$seg") with different bytes"
done

# 3. Kill a worker mid-save; the coordinator must recover exactly.
mkdir -p "$work/spool2"
"$shardrun" --shards=4 --worker-bin="$worker" --spool-dir="$work/spool2" \
  --failpoints='spool.save.write=nth(1)!kill' \
  "$prog" > "$work/kill.out" 2>"$work/kill.err"
rc=$?
[ "$rc" -eq 0 ] || { fail "kill-recovery run exited $rc"; cat "$work/kill.err" >&2; }
grep -q '^shardrun: complete' "$work/kill.out" ||
  fail "kill-recovery run not complete: $(head -1 "$work/kill.out")"
restarts=$(sed -n 's/^shardrun: complete (\([0-9]*\) restarts.*/\1/p' "$work/kill.out")
[ "${restarts:-0}" -ge 1 ] || fail "kill schedule landed no restart"
sites "$work/kill.out" > "$work/kill.sites"
cmp -s "$work/clean.sites" "$work/kill.sites" ||
  fail "recovered run's error sites differ from the clean run's"
grep '^verdicts:' "$work/kill.out" | cmp -s - "$work/clean.verdicts" ||
  fail "recovered run's verdict counts differ from the clean run's"
for seg in "$work/spool2"/seg-*.spool; do
  [ -e "$seg" ] || continue
  cmp -s "$seg" "$work/spool/$(basename "$seg")" ||
    fail "surviving segment $(basename "$seg") differs from the clean run's"
done

# 4. Permanent failure: every incarnation dies, fallback still sound.
mkdir -p "$work/spool3"
"$shardrun" --shards=4 --worker-bin="$worker" --spool-dir="$work/spool3" \
  --failpoints='worker.scc.solve=always!kill' --failpoints-all-incarnations \
  --restart-budget=1 \
  "$prog" > "$work/fb.out" 2>"$work/fb.err"
rc=$?
[ "$rc" -eq 0 ] || { fail "fallback run exited $rc"; cat "$work/fb.err" >&2; }
grep -q '^shardrun: fallback complete' "$work/fb.out" ||
  fail "fallback not taken: $(head -1 "$work/fb.out")"
grep -q '^failed shards:' "$work/fb.out" || fail "no failed shards reported"
sites "$work/fb.out" > "$work/fb.sites"
cmp -s "$work/clean.sites" "$work/fb.sites" ||
  fail "fallback error sites differ from the clean run's"

# 5. Usage errors exit 2.
"$shardrun" "$prog" >/dev/null 2>&1
[ "$?" -eq 2 ] || fail "missing --spool-dir did not exit 2"
"$shardrun" --spool-dir="$work/nonexistent-dir" "$prog" >/dev/null 2>&1
[ "$?" -eq 2 ] || fail "nonexistent spool dir did not exit 2"

if [ "$fails" -ne 0 ]; then
  echo "$fails check(s) failed" >&2
  exit 1
fi
echo "shardrun smoke OK"
