#!/usr/bin/env bash
# Bounded crash soak for the swift-serve WAL: several rounds of a live
# daemon fed random fuzz_edit requests over a fifo, each round ended by
# an un-negotiated `kill -9` mid-session. Every edit the daemon
# acknowledged before the kill must survive: the next round warm-starts
# from the store + journal and its ready line must report exactly the
# cumulative acknowledged-edit count replayed. A final clean session
# dumps the recovered program and its query_all verdicts, which must
# coincide with batch swift-analyze run from scratch on that dump.
#
# Usage: serve_soak.sh <swift-serve> <swift-analyze> <program.swiftir>
#        [rounds] [edits-per-round]
set -u

serve=$1
analyze=$2
prog=$3
rounds=${4:-4}
edits=${5:-3}
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
fails=0

fail() {
  echo "FAIL: $1" >&2
  fails=$((fails + 1))
}

store=$work/soak.store
journal=$work/soak.journal
acked_total=0

# One kill round: start the daemon (cold on round 1, warm after), pump
# $edits fuzz_edit requests, count the acks, then SIGKILL it.
run_round() {
  local round=$1
  local fifo=$work/round$round.fifo
  local out=$work/round$round.out
  local err=$work/round$round.err
  mkfifo "$fifo"
  # Cold round 1 takes the program; warm rounds get it from the store.
  local flags=(--store-out="$store" --journal="$journal"
               --request-deadline-ms=30000)
  if [ "$round" -gt 1 ]; then
    flags+=(--store="$store")
  else
    flags+=("$prog")
  fi
  "$serve" "${flags[@]}" < "$fifo" > "$out" 2> "$err" &
  local pid=$!
  exec 3> "$fifo"

  # Warm rounds must replay every previously acknowledged edit.
  local i
  for i in $(seq 100); do
    grep -q 'ready:' "$err" 2>/dev/null && break
    sleep 0.1
  done
  if ! grep -q 'ready:' "$err"; then
    fail "round $round: daemon never became ready"
    cat "$err" >&2
    kill -9 "$pid" 2>/dev/null
    exec 3>&-
    return
  fi
  local replayed
  replayed=$(sed -n 's/.* \([0-9]*\) journal edits replayed.*/\1/p' "$err")
  [ "$replayed" = "$acked_total" ] ||
    fail "round $round: replayed $replayed edits, expected $acked_total"

  # Random-ish but reproducible fuzz edits: seed varies per round/slot.
  for i in $(seq "$edits"); do
    printf '{"op":"fuzz_edit","seed":%d,"k":%d}\n' \
      $((round * 97 + i)) $(((round + i) % 5)) >&3
  done
  # Wait until every request got its response line, then count acks.
  for i in $(seq 100); do
    [ "$(wc -l < "$out" 2>/dev/null)" -ge "$edits" ] && break
    sleep 0.1
  done
  [ "$(wc -l < "$out")" -ge "$edits" ] ||
    fail "round $round: daemon answered $(wc -l < "$out")/$edits requests"
  local acked
  acked=$(grep -c '"ok":true' "$out")
  acked_total=$((acked_total + acked))

  # The crash. Acked edits are fsync'd in the journal; nothing else is.
  kill -9 "$pid" 2>/dev/null
  wait "$pid" 2>/dev/null
  exec 3>&-
}

for r in $(seq "$rounds"); do
  run_round "$r"
done
[ "$acked_total" -ge 1 ] || fail "soak acknowledged no edits at all"

# Final clean session: recover once more, dump the program, and pin the
# served verdicts against batch swift-analyze on the dumped text.
printf '{"op":"query_all"}\n{"op":"dump"}\n{"op":"shutdown"}\n' |
  "$serve" --store="$store" --store-out="$store" --journal="$journal" \
    > "$work/final.out" 2> "$work/final.err"
rc=$?
[ "$rc" -eq 0 ] || { fail "final session exited $rc"; cat "$work/final.err" >&2; }
replayed=$(sed -n 's/.* \([0-9]*\) journal edits replayed.*/\1/p' \
  "$work/final.err")
[ "$replayed" = "$acked_total" ] ||
  fail "final recovery replayed $replayed edits, expected $acked_total"

python3 - "$work/final.out" "$work/recovered.swiftir" \
  > "$work/serve.sites" <<'EOF'
import json, sys
rs = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert len(rs) == 3 and all(r.get("ok") for r in rs), rs
qa, dump, bye = rs
open(sys.argv[2], "w").write(dump["program"])
for s in sorted(qa["error_sites"]):
    print(f"@{s}")
EOF
[ $? -eq 0 ] || fail "final session responses malformed"

"$analyze" "$work/recovered.swiftir" > "$work/batch.out" 2>/dev/null ||
  fail "swift-analyze exited $? on the recovered program"
grep -o 'error @[0-9]*' "$work/batch.out" | grep -o '@[0-9]*' |
  sort > "$work/batch.sites"
diff "$work/batch.sites" "$work/serve.sites" ||
  fail "recovered verdicts differ from batch analysis of the dump"

if [ "$fails" -ne 0 ]; then
  echo "$fails check(s) failed" >&2
  exit 1
fi
echo "serve soak: $rounds round(s), $acked_total acked edit(s) survived"
