#!/usr/bin/env bash
# swift-serve protocol smoke: a scripted stats/query/edit/query session
# over stdin must agree with batch swift-analyze on every error site, a
# self-edit through the protocol (the first proc block resubmitted
# verbatim) must be accepted and change no verdict, and a warm start
# from the auto-saved store must reuse every summary and still agree.
#
# Usage: serve_smoke.sh <swift-serve> <swift-analyze> <program.swiftir>
set -u

serve=$1
analyze=$2
prog=$3
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
fails=0

fail() {
  echo "FAIL: $1" >&2
  fails=$((fails + 1))
}

# Batch reference: swift-analyze's error sites, one "@N" per line.
"$analyze" "$prog" > "$work/batch.out" 2>/dev/null ||
  fail "swift-analyze exited $?"
grep -o 'error @[0-9]*' "$work/batch.out" | grep -o '@[0-9]*' |
  sort > "$work/batch.sites"

# Build the scripted session: the edit body is the program's own first
# proc block, so the edit must be accepted and is semantically a no-op.
python3 - "$prog" > "$work/requests" <<'EOF'
import json, sys
lines = open(sys.argv[1]).read().splitlines()
start = next(i for i, l in enumerate(lines) if l.startswith('proc '))
end = next(i for i in range(start, len(lines)) if lines[i] == '}')
name = lines[start].split()[1].split('(')[0]
body = '\n'.join(lines[start:end + 1]) + '\n'
print(json.dumps({"op": "stats"}))
print(json.dumps({"op": "query_all"}))
print(json.dumps({"op": "edit", "proc": name, "body": body}))
print(json.dumps({"op": "query_all"}))
print(json.dumps({"op": "query", "site": 0}))
print(json.dumps({"op": "shutdown"}))
EOF

"$serve" --store-out="$work/store" "$prog" < "$work/requests" \
  > "$work/session.out" 2> "$work/session.err"
rc=$?
[ "$rc" -eq 0 ] || { fail "serve session exited $rc"; cat "$work/session.err" >&2; }

# Validate the six responses and print the session's error sites.
python3 - "$work/session.out" > "$work/serve.sites" <<'EOF'
import json, sys
rs = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert len(rs) == 6, f"expected 6 responses, got {len(rs)}: {rs}"
stats, qa1, edit, qa2, q0, bye = rs
for r in rs:
    assert r.get("ok") is True, f"request failed: {r}"
assert stats["solved"] is True and stats["procs"] >= 1, stats
assert qa1["error_sites"] == qa2["error_sites"], \
    f"self-edit changed verdicts: {qa1} -> {qa2}"
v = q0["verdict"]
assert (0 in qa1["error_sites"]) == (v == "error"), (qa1, v)
for s in sorted(qa1["error_sites"]):
    print(f"@{s}")
EOF
[ $? -eq 0 ] || fail "session responses malformed (see above)"

diff "$work/batch.sites" "$work/serve.sites" ||
  fail "serve session error sites differ from batch swift-analyze"

# Protocol robustness: an oversized request line (> 64 KiB) gets a typed
# error response, malformed JSON gets code "parse", and the session keeps
# serving — the follow-up query must still succeed.
python3 - > "$work/robust.requests" <<'EOF'
import json
print('{"op":"query","site":' + '9' * 70000 + '}')  # > 64 KiB, one line
print('this is not json')
print(json.dumps({"op": "frobnicate"}))
print(json.dumps({"op": "stats"}))
print(json.dumps({"op": "shutdown"}))
EOF
"$serve" "$prog" < "$work/robust.requests" \
  > "$work/robust.out" 2> "$work/robust.err"
rc=$?
[ "$rc" -eq 0 ] || { fail "robustness session exited $rc"; cat "$work/robust.err" >&2; }
python3 - "$work/robust.out" <<'EOF'
import json, sys
rs = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert len(rs) == 5, f"expected 5 responses, got {len(rs)}: {rs}"
over, bad, unk, stats, bye = rs
assert over.get("ok") is False and over.get("code") == "oversized_line", over
assert bad.get("ok") is False and bad.get("code") == "parse", bad
assert unk.get("ok") is False and unk.get("code") == "unknown_op", unk
assert stats.get("ok") is True and stats.get("solved") is True, stats
assert bye.get("ok") is True, bye
EOF
[ $? -eq 0 ] || fail "robustness responses malformed (see above)"

# Warm start from the auto-saved store: every summary reused, same sites.
test -s "$work/store" || fail "auto-saved store missing or empty"
printf '{"op":"query_all"}\n{"op":"shutdown"}\n' |
  "$serve" --store="$work/store" > "$work/warm.out" 2> "$work/warm.err" ||
  fail "warm-start session exited $?"
counts=$(sed -n 's/.* \([0-9]*\) summaries (\([0-9]*\) reused).*/\1 \2/p' \
  "$work/warm.err")
if [ -z "$counts" ]; then
  fail "warm-start ready line missing"
  cat "$work/warm.err" >&2
else
  set -- $counts
  [ "$1" = "$2" ] || fail "warm start reused only $2 of $1 summaries"
  [ "$1" -ge 1 ] || fail "warm start loaded no summaries"
fi
python3 - "$work/warm.out" > "$work/warm.sites" <<'EOF'
import json, sys
rs = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert len(rs) == 2 and all(r.get("ok") for r in rs), rs
for s in sorted(rs[0]["error_sites"]):
    print(f"@{s}")
EOF
[ $? -eq 0 ] || fail "warm-start responses malformed"
diff "$work/batch.sites" "$work/warm.sites" ||
  fail "warm-start error sites differ from batch swift-analyze"

if [ "$fails" -ne 0 ]; then
  echo "$fails check(s) failed" >&2
  exit 1
fi
echo "all serve smoke checks passed"
