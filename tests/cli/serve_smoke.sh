#!/usr/bin/env bash
# swift-serve protocol smoke: a scripted stats/query/edit/query session
# over stdin must agree with batch swift-analyze on every error site, a
# self-edit through the protocol (the first proc block resubmitted
# verbatim) must be accepted and change no verdict, and a warm start
# from the auto-saved store must reuse every summary and still agree.
# Also covers the shutdown contract (shutdown response sent and
# --metrics-out/--trace-out flushed before exit 0) and graceful drain
# (SIGTERM finishes the in-flight request, emits the drain stats line,
# and exits 0).
#
# Usage: serve_smoke.sh <swift-serve> <swift-analyze> <program.swiftir>
set -u

serve=$1
analyze=$2
prog=$3
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
fails=0

fail() {
  echo "FAIL: $1" >&2
  fails=$((fails + 1))
}

# Batch reference: swift-analyze's error sites, one "@N" per line.
"$analyze" "$prog" > "$work/batch.out" 2>/dev/null ||
  fail "swift-analyze exited $?"
grep -o 'error @[0-9]*' "$work/batch.out" | grep -o '@[0-9]*' |
  sort > "$work/batch.sites"

# Build the scripted session: the edit body is the program's own first
# proc block, so the edit must be accepted and is semantically a no-op.
python3 - "$prog" > "$work/requests" <<'EOF'
import json, sys
lines = open(sys.argv[1]).read().splitlines()
start = next(i for i, l in enumerate(lines) if l.startswith('proc '))
end = next(i for i in range(start, len(lines)) if lines[i] == '}')
name = lines[start].split()[1].split('(')[0]
body = '\n'.join(lines[start:end + 1]) + '\n'
print(json.dumps({"op": "stats"}))
print(json.dumps({"op": "query_all"}))
print(json.dumps({"op": "edit", "proc": name, "body": body}))
print(json.dumps({"op": "query_all"}))
print(json.dumps({"op": "query", "site": 0}))
print(json.dumps({"op": "shutdown"}))
EOF

"$serve" --store-out="$work/store" "$prog" < "$work/requests" \
  > "$work/session.out" 2> "$work/session.err"
rc=$?
[ "$rc" -eq 0 ] || { fail "serve session exited $rc"; cat "$work/session.err" >&2; }

# Validate the six responses and print the session's error sites.
python3 - "$work/session.out" > "$work/serve.sites" <<'EOF'
import json, sys
rs = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert len(rs) == 6, f"expected 6 responses, got {len(rs)}: {rs}"
stats, qa1, edit, qa2, q0, bye = rs
for r in rs:
    assert r.get("ok") is True, f"request failed: {r}"
assert stats["solved"] is True and stats["procs"] >= 1, stats
assert qa1["error_sites"] == qa2["error_sites"], \
    f"self-edit changed verdicts: {qa1} -> {qa2}"
v = q0["verdict"]
assert (0 in qa1["error_sites"]) == (v == "error"), (qa1, v)
for s in sorted(qa1["error_sites"]):
    print(f"@{s}")
EOF
[ $? -eq 0 ] || fail "session responses malformed (see above)"

diff "$work/batch.sites" "$work/serve.sites" ||
  fail "serve session error sites differ from batch swift-analyze"

# Protocol robustness: an oversized request line (> 64 KiB) gets a typed
# error response, and the valid query_all PIPELINED RIGHT BEHIND IT in
# the same write is answered correctly — the server resynchronizes on
# the line boundary, it does not swallow or garble the follow-up.
# Malformed JSON gets code "parse", and the session keeps serving.
python3 - > "$work/robust.requests" <<'EOF'
import json
print('{"op":"query","site":' + '9' * 70000 + '}')  # > 64 KiB, one line
print(json.dumps({"op": "query_all"}))  # pipelined behind the overflow
print('this is not json')
print(json.dumps({"op": "frobnicate"}))
print(json.dumps({"op": "stats"}))
print(json.dumps({"op": "shutdown"}))
EOF
"$serve" "$prog" < "$work/robust.requests" \
  > "$work/robust.out" 2> "$work/robust.err"
rc=$?
[ "$rc" -eq 0 ] || { fail "robustness session exited $rc"; cat "$work/robust.err" >&2; }
python3 - "$work/robust.out" > "$work/robust.sites" <<'EOF'
import json, sys
rs = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert len(rs) == 6, f"expected 6 responses, got {len(rs)}: {rs}"
over, qa, bad, unk, stats, bye = rs
assert over.get("ok") is False and over.get("code") == "oversized_line", over
assert qa.get("ok") is True and "error_sites" in qa, qa
assert bad.get("ok") is False and bad.get("code") == "parse", bad
assert unk.get("ok") is False and unk.get("code") == "unknown_op", unk
assert stats.get("ok") is True and stats.get("solved") is True, stats
assert bye.get("ok") is True, bye
for s in sorted(qa["error_sites"]):
    print(f"@{s}")
EOF
[ $? -eq 0 ] || fail "robustness responses malformed (see above)"
diff "$work/batch.sites" "$work/robust.sites" ||
  fail "query pipelined behind an oversized line got wrong content"

# Warm start from the auto-saved store: every summary reused, same sites.
test -s "$work/store" || fail "auto-saved store missing or empty"
printf '{"op":"query_all"}\n{"op":"shutdown"}\n' |
  "$serve" --store="$work/store" > "$work/warm.out" 2> "$work/warm.err" ||
  fail "warm-start session exited $?"
counts=$(sed -n 's/.* \([0-9]*\) summaries (\([0-9]*\) reused).*/\1 \2/p' \
  "$work/warm.err")
if [ -z "$counts" ]; then
  fail "warm-start ready line missing"
  cat "$work/warm.err" >&2
else
  set -- $counts
  [ "$1" = "$2" ] || fail "warm start reused only $2 of $1 summaries"
  [ "$1" -ge 1 ] || fail "warm start loaded no summaries"
fi
python3 - "$work/warm.out" > "$work/warm.sites" <<'EOF'
import json, sys
rs = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert len(rs) == 2 and all(r.get("ok") for r in rs), rs
for s in sorted(rs[0]["error_sites"]):
    print(f"@{s}")
EOF
[ $? -eq 0 ] || fail "warm-start responses malformed"
diff "$work/batch.sites" "$work/warm.sites" ||
  fail "warm-start error sites differ from batch swift-analyze"

# Shutdown contract: the shutdown response is sent AND the requested
# observability files are flushed, valid JSON before the process exits 0.
printf '{"op":"stats"}\n{"op":"shutdown"}\n' |
  "$serve" --metrics-out="$work/shutdown.metrics.json" \
           --trace-out="$work/shutdown.trace.json" "$prog" \
  > "$work/shutdown.out" 2> "$work/shutdown.err"
rc=$?
[ "$rc" -eq 0 ] || { fail "shutdown session exited $rc"; cat "$work/shutdown.err" >&2; }
python3 - "$work/shutdown.out" "$work/shutdown.metrics.json" \
          "$work/shutdown.trace.json" <<'EOF'
import json, sys
rs = [json.loads(l) for l in open(sys.argv[1]) if l.strip()]
assert len(rs) == 2 and all(r.get("ok") for r in rs), rs
m = json.load(open(sys.argv[2]))
assert m.get("format") == "swift-metrics" and m.get("version") == 1, m
json.load(open(sys.argv[3]))  # must at least parse
EOF
[ $? -eq 0 ] || fail "shutdown did not flush valid metrics/trace files"

# Graceful drain: SIGTERM mid-session finishes the in-flight request,
# emits the final drain stats line, flushes observability, and exits 0.
mkfifo "$work/drain.fifo"
"$serve" --metrics-out="$work/drain.metrics.json" "$prog" \
  < "$work/drain.fifo" > "$work/drain.out" 2> "$work/drain.err" &
pid=$!
exec 3> "$work/drain.fifo"
printf '{"op":"stats"}\n' >&3
for _ in $(seq 100); do
  grep -q '"procs"' "$work/drain.out" 2>/dev/null && break
  sleep 0.1
done
grep -q '"procs"' "$work/drain.out" || fail "drain session never responded"
kill -TERM "$pid"
for _ in $(seq 100); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
done
if kill -0 "$pid" 2>/dev/null; then
  kill -9 "$pid"
  fail "serve did not drain on SIGTERM"
fi
wait "$pid"
rc=$?
exec 3>&-
[ "$rc" -eq 0 ] || { fail "drained session exited $rc"; cat "$work/drain.err" >&2; }
grep -q '"drain":true' "$work/drain.out" || fail "drain stats line missing"
grep -q 'drained on signal' "$work/drain.err" ||
  fail "drain notice missing from stderr"
python3 -c 'import json,sys; json.load(open(sys.argv[1]))' \
  "$work/drain.metrics.json" || fail "drain did not flush metrics"

if [ "$fails" -ne 0 ]; then
  echo "$fails check(s) failed" >&2
  exit 1
fi
echo "all serve smoke checks passed"
