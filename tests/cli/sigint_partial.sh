#!/usr/bin/env bash
# SIGINT/SIGTERM contract for swift-analyze: a signal mid-run lands on the
# governor's Red latch and winds the analysis down through the normal
# budget-exhausted path — exit code 3, a PARTIAL verdict line whose error
# sites are a sound subset (never fabricated Proved), and flushed
# trace/metrics files — instead of dying with nothing.
#
# The run prints "analysis running" on stderr right before the governed
# solve starts; we wait for that marker so the signal always lands
# mid-run (the alias-analysis setup phase before it is not governed).
#
# Usage: sigint_partial.sh <swift-analyze> <heavy-program.swiftir>
set -u

analyze=$1
prog=$2
work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
fails=0

check() { # check <desc> <expected-rc> <actual-rc>
  if [ "$3" -ne "$2" ]; then
    echo "FAIL: $1: expected exit $2, got $3" >&2
    fails=$((fails + 1))
  fi
}
expect_grep() { # expect_grep <desc> <pattern> <file>
  if ! grep -q "$2" "$3"; then
    echo "FAIL: $1: output lacks '$2'" >&2
    cat "$3" >&2
    fails=$((fails + 1))
  fi
}

run_one() { # run_one <desc> <signal>
  desc=$1
  sig=$2
  : > "$work/err"
  "$analyze" --mode=swift --trace-out="$work/trace.json" \
    --metrics-out="$work/metrics.json" "$prog" \
    > "$work/out" 2> "$work/err" &
  pid=$!

  # Wait (up to 120s) for the run-is-live marker, then signal. The
  # governed run lasts several seconds even on fast machines, so a
  # signal sent a beat after the marker always lands mid-run.
  for _ in $(seq 1 1200); do
    grep -q "analysis running" "$work/err" 2>/dev/null && break
    kill -0 "$pid" 2>/dev/null || break
    sleep 0.1
  done
  if ! grep -q "analysis running" "$work/err"; then
    echo "FAIL: $desc: run-is-live marker never appeared" >&2
    kill -9 "$pid" 2>/dev/null
    wait "$pid" 2>/dev/null
    fails=$((fails + 1))
    return
  fi
  sleep 0.3
  kill -"$sig" "$pid"
  wait "$pid"
  rc=$?

  check "$desc exit code" 3 "$rc"
  expect_grep "$desc verdict line" "PARTIAL" "$work/out"
  # A signal-interrupted run must never claim full resolution.
  expect_grep "$desc unresolved sites" "unresolved" "$work/out"
  # Observability flushed on the way out.
  if [ ! -s "$work/trace.json" ]; then
    echo "FAIL: $desc: trace file missing or empty" >&2
    fails=$((fails + 1))
  fi
  if [ ! -s "$work/metrics.json" ]; then
    echo "FAIL: $desc: metrics file missing or empty" >&2
    fails=$((fails + 1))
  fi
}

run_one "SIGINT" INT
run_one "SIGTERM" TERM

if [ "$fails" -ne 0 ]; then
  echo "$fails check(s) failed" >&2
  exit 1
fi
echo "all signal-interrupt checks passed"
