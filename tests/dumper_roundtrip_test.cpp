//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Golden tests of the swift-ir round trip (ir/Dumper.h): printing a
/// program, parsing the text back, and printing again must reach a
/// fixpoint, and the re-parsed program must analyze identically — same
/// procedures, allocation sites, error sites, and main-exit states. This
/// is what makes differential-test reproducers trustworthy: the file IS
/// the failing program, exactly.
///
//===----------------------------------------------------------------------===//

#include "genprog/Fuzzer.h"
#include "ir/Dumper.h"
#include "lang/Lower.h"
#include "typestate/Runner.h"

#include <gtest/gtest.h>

#include <stdexcept>

using namespace swift;

namespace {

const char *PaperExample = R"(
  typestate File {
    start closed; error err;
    closed -open-> opened;
    opened -close-> closed;
  }
  proc main() {
    v1 = new File; foo(v1);
    v2 = new File; foo(v2);
    v3 = new File; foo(v3);
  }
  proc foo(f) { f.open(); f.close(); }
)";

/// Renders a MainExit set in program-independent form. TsAbstractState
/// values embed access paths ordered by symbol id, and the text parser
/// interns symbols in a different order than the TSL lowerer, so the sets
/// cannot be compared bitwise across programs — but their rendered
/// (site, state, sorted-path-texts) tuples can.
std::set<std::string> canonicalMainExit(const Program &Prog,
                                        const std::set<TsAbstractState> &E) {
  const SymbolTable &Syms = Prog.symbols();
  auto PathSet = [&](const ApSet &A) {
    std::set<std::string> Sorted;
    for (const AccessPath &P : A.paths())
      Sorted.insert(P.str(Syms));
    std::string R = "{";
    for (const std::string &T : Sorted) {
      if (R.size() > 1)
        R += ",";
      R += T;
    }
    return R + "}";
  };
  std::set<std::string> Out;
  for (const TsAbstractState &S : E) {
    if (S.isLambda()) {
      Out.insert("(lambda)");
      continue;
    }
    Out.insert("(h" + std::to_string(S.site()) + ", t" +
               std::to_string(S.tstate()) + ", " + PathSet(S.must()) + ", " +
               PathSet(S.mustNot()) + ")");
  }
  return Out;
}

/// print -> parse -> print fixpoint, plus structural and semantic
/// equality of the re-parsed program.
void expectRoundTrip(const Program &Prog) {
  std::string Text = programToText(Prog);
  std::unique_ptr<Program> Re = parseProgramText(Text);
  ASSERT_NE(Re, nullptr);
  EXPECT_EQ(programToText(*Re), Text);

  // Structure survives exactly: ids, node counts, entry/exit, sites.
  ASSERT_EQ(Re->numProcs(), Prog.numProcs());
  EXPECT_EQ(Re->numSites(), Prog.numSites());
  EXPECT_EQ(Re->numSpecs(), Prog.numSpecs());
  EXPECT_EQ(Re->numCommands(), Prog.numCommands());
  EXPECT_EQ(Re->numCallCommands(), Prog.numCallCommands());
  for (ProcId P = 0; P != Prog.numProcs(); ++P) {
    const Procedure &A = Prog.proc(P);
    const Procedure &B = Re->proc(P);
    EXPECT_EQ(Prog.symbols().text(A.name()), Re->symbols().text(B.name()));
    EXPECT_EQ(B.numNodes(), A.numNodes());
    EXPECT_EQ(B.entry(), A.entry());
    EXPECT_EQ(B.exit(), A.exit());
    EXPECT_EQ(B.params().size(), A.params().size());
    EXPECT_EQ(B.reachableRpo(), A.reachableRpo());
    for (NodeId N = 0; N != A.numNodes(); ++N) {
      EXPECT_EQ(B.node(N).Cmd.Kind, A.node(N).Cmd.Kind);
      EXPECT_EQ(B.node(N).Succs, A.node(N).Succs);
    }
    // isStableParam must agree: the analyses' call mapping depends on it.
    for (size_t I = 0; I != A.params().size(); ++I)
      EXPECT_EQ(B.isStableParam(B.params()[I]),
                A.isStableParam(A.params()[I]));
  }
  for (SiteId S = 0; S != Prog.numSites(); ++S) {
    EXPECT_EQ(Re->site(S).Proc, Prog.site(S).Proc);
    EXPECT_EQ(Re->site(S).Node, Prog.site(S).Node);
    EXPECT_EQ(Re->symbols().text(Re->site(S).Class),
              Prog.symbols().text(Prog.site(S).Class));
  }

  // And the analyses cannot tell the two programs apart.
  if (Prog.numSpecs() == 0)
    return;
  TsContext CtxA(Prog, Prog.spec(0).name());
  TsContext CtxB(*Re, Re->spec(0).name());
  TsRunResult Ta = runTypestateTd(CtxA);
  TsRunResult Tb = runTypestateTd(CtxB);
  ASSERT_FALSE(Ta.Timeout);
  ASSERT_FALSE(Tb.Timeout);
  EXPECT_EQ(Tb.ErrorSites, Ta.ErrorSites);
  EXPECT_EQ(Tb.ErrorPoints, Ta.ErrorPoints);
  EXPECT_EQ(Tb.TdSummaries, Ta.TdSummaries);
  EXPECT_EQ(canonicalMainExit(*Re, Tb.MainExit),
            canonicalMainExit(Prog, Ta.MainExit));
}

TEST(DumperRoundTripTest, PaperExample) {
  std::unique_ptr<Program> Prog = parseProgram(PaperExample);
  expectRoundTrip(*Prog);
}

TEST(DumperRoundTripTest, FuzzSeeds) {
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    FuzzConfig FC;
    FC.Seed = Seed;
    FC.NumProcs = 2 + Seed % 4;
    FC.StmtsPerProc = 5 + Seed % 9;
    FC.NumVars = 3 + Seed % 3;
    FC.NumFields = 1 + Seed % 2;
    FC.MaxDepth = 1 + Seed % 3;
    std::unique_ptr<Program> Prog = generateFuzzProgram(FC);
    SCOPED_TRACE("seed " + std::to_string(Seed));
    expectRoundTrip(*Prog);
  }
}

TEST(DumperRoundTripTest, DeadNodesSurvive) {
  // `return` leaves a dangling dead node behind; it must keep its id (and
  // thus keep all later node ids and site ids stable) across the trip.
  const char *Src = R"(
    typestate File {
      start closed; error err;
      closed -open-> opened;
    }
    proc main() {
      v = new File;
      return v;
      v.open();
    }
  )";
  std::unique_ptr<Program> Prog = parseProgram(Src);
  std::string Text = programToText(*Prog);
  std::unique_ptr<Program> Re = parseProgramText(Text);
  EXPECT_EQ(Re->proc(Re->mainProc()).numNodes(),
            Prog->proc(Prog->mainProc()).numNodes());
  EXPECT_GT(Prog->proc(Prog->mainProc()).numNodes(),
            Prog->proc(Prog->mainProc()).reachableRpo().size());
  expectRoundTrip(*Prog);
}

TEST(DumperRoundTripTest, MalformedInputsThrow) {
  const char *Good = R"(# swift-ir v1
typestate File {
  states closed opened err
  init closed
  error err
  method open = opened err err
}
proc main() entry 0 exit 1 nodes 3 {
  0: nop -> 2
  1: nop ->
  2: v0 = new File @0 -> 1
}
main main
)";
  // The baseline parses and round-trips.
  std::unique_ptr<Program> P = parseProgramText(Good);
  EXPECT_EQ(programToText(*P), Good);

  auto ExpectThrows = [](const std::string &Text) {
    EXPECT_THROW((void)parseProgramText(Text), std::runtime_error) << Text;
  };
  ExpectThrows("");                                   // no main
  ExpectThrows("garbage\n");                          // unknown directive
  std::string G(Good);
  auto Replaced = [&](const std::string &From, const std::string &To) {
    std::string S = G;
    S.replace(S.find(From), From.size(), To);
    return S;
  };
  ExpectThrows(Replaced("main main", "main nosuch"));   // unknown main
  ExpectThrows(Replaced("@0", "@1"));                   // non-dense sites
  ExpectThrows(Replaced("-> 2", "-> 7"));               // successor range
  ExpectThrows(Replaced("nodes 3", "nodes 2"));         // node count
  ExpectThrows(Replaced("init closed", "init ajar"));   // unknown state
  ExpectThrows(Replaced("new File", "new Pipe"));       // unknown class
  ExpectThrows(Replaced("0: nop", "5: nop"));           // id out of order
  ExpectThrows(Replaced("method open = opened err err",
                        "method open = opened err"));   // short transformer
}

TEST(DumperRoundTripTest, CallArityAndForwardReferences) {
  const char *Src = R"(
typestate File {
  states closed err
  init closed
  error err
}
proc main() entry 0 exit 1 nodes 3 {
  0: nop -> 2
  1: nop ->
  2: call helper(v0 v0) -> 1
}
proc helper(a b) entry 0 exit 1 nodes 2 {
  0: nop -> 1
  1: nop ->
}
main main
)";
  // Forward call (helper defined after main) resolves fine.
  std::unique_ptr<Program> P = parseProgramText(Src);
  EXPECT_EQ(P->numProcs(), 2u);
  expectRoundTrip(*P);

  // Wrong arity is rejected.
  std::string Bad(Src);
  Bad.replace(Bad.find("(v0 v0)"), 7, "(v0)");
  EXPECT_THROW((void)parseProgramText(Bad), std::runtime_error);
}

} // namespace
