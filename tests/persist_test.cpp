//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of crash-safe, corruption-detecting persistence: the CRC32
/// primitive, swift-ckpt v2 framing, typed load-error classification
/// (every truncation of a framed file reports Truncated, every bit flip a
/// CheckpointLoadError, payload flips specifically Corrupt), legacy v1
/// compatibility, the checked-in corrupted-checkpoint corpus
/// (tests/corpus/*.swiftckpt), a seeded mutation fuzz loop, atomic-save
/// behavior under injected write faults (transient faults retried,
/// persistent faults surfaced with the old file intact), and the parser
/// count-sanity limits that make absurd section counts fail fast.
///
//===----------------------------------------------------------------------===//

#include "framework/Tabulation.h"
#include "genprog/Fuzzer.h"
#include "govern/Checkpoint.h"
#include "ir/Dumper.h"
#include "support/AtomicFile.h"
#include "support/FailPoint.h"
#include "support/Hashing.h"
#include "support/Rng.h"
#include "typestate/Runner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include <unistd.h>

using namespace swift;

namespace {

//===----------------------------------------------------------------------===//
// Fixtures: a real checkpoint image and a scratch directory
//===----------------------------------------------------------------------===//

/// A genuine budget-exhausted TD checkpoint, built once: its v1 payload
/// text and the program/checkpoint pair it came from.
struct Fixture {
  std::unique_ptr<Program> Prog;
  TsCheckpoint Ckpt;
  std::string Payload; ///< swift-ckpt v1 text.
  std::string Image;   ///< v2 file image (framed payload).
};

const Fixture &fixture() {
  static Fixture F = [] {
    Fixture R;
    for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
      FuzzConfig FC;
      FC.Seed = Seed;
      FC.NumProcs = 3 + Seed % 4;
      FC.StmtsPerProc = 8 + Seed % 8;
      std::unique_ptr<Program> Prog = generateFuzzProgram(FC);
      TsContext Ctx(*Prog, Prog->spec(0).name());

      GovernedRunOptions GO;
      GO.Config.K = NoBuTrigger;
      GO.Config.Theta = 1;
      GO.Limits.MaxSteps = 40;
      TsTabSnapshot Snap;
      GO.CheckpointOut = &Snap;
      TsGovernedResult G = runTypestateGoverned(Ctx, GO);
      if (!G.Partial)
        continue;

      R.Ckpt.Config = GO.Config;
      R.Ckpt.TrackedClass = Prog->symbols().text(Prog->spec(0).name());
      R.Ckpt.StepsConsumed = Snap.StepsConsumed;
      R.Ckpt.Snapshot = std::move(Snap);
      R.Prog = std::move(Prog);
      R.Payload = checkpointToText(*R.Prog, R.Ckpt);
      R.Image = frameCheckpointV2(R.Payload);
      return R;
    }
    std::fprintf(stderr, "persist_test: no seed produced a partial run\n");
    std::abort();
  }();
  return F;
}

/// Per-test scratch directory, removed on teardown.
class PersistTest : public ::testing::Test {
protected:
  void SetUp() override {
    Dir = std::filesystem::temp_directory_path() /
          ("swift_persist_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(Dir);
  }
  void TearDown() override {
    std::error_code EC;
    std::filesystem::remove_all(Dir, EC);
    failpoint::disarmAll();
  }
  std::string path(const char *Name) const { return (Dir / Name).string(); }

  std::filesystem::path Dir;
};

LoadErrorKind kindOf(std::string_view Image) {
  try {
    (void)parseCheckpointFile(Image);
  } catch (const CheckpointLoadError &E) {
    return E.kind();
  }
  ADD_FAILURE() << "expected a CheckpointLoadError";
  return LoadErrorKind::IoError;
}

//===----------------------------------------------------------------------===//
// CRC32
//===----------------------------------------------------------------------===//

TEST(Crc32Test, KnownAnswerAndSensitivity) {
  // The IEEE check value: CRC32 of the ASCII digits "123456789".
  EXPECT_EQ(crc32("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(crc32("", 0), 0u);
  // Any single-bit change moves the CRC.
  std::string A = "swift checkpoint payload";
  std::string B = A;
  B[5] ^= 0x20;
  EXPECT_NE(crc32(A.data(), A.size()), crc32(B.data(), B.size()));
  // Seeding chains: crc(ab) == crc(b, seed=crc(a)).
  EXPECT_EQ(crc32("123456789", 9),
            crc32("456789", 6, crc32("123", 3)));
}

//===----------------------------------------------------------------------===//
// v2 framing and classification
//===----------------------------------------------------------------------===//

TEST(PersistFormatTest, FrameRoundTripsThroughParse) {
  const Fixture &F = fixture();
  ASSERT_EQ(F.Image.substr(0, 14), "swift-ckpt v2 ");
  ParsedCheckpoint PC = parseCheckpointFile(F.Image);
  EXPECT_EQ(PC.Checkpoint.TrackedClass, F.Ckpt.TrackedClass);
  EXPECT_EQ(PC.Checkpoint.StepsConsumed, F.Ckpt.StepsConsumed);
  // Nothing was lost: reprinting the parse reproduces the payload.
  EXPECT_EQ(checkpointToText(*PC.Prog, PC.Checkpoint), F.Payload);
}

TEST(PersistFormatTest, LegacyV1PayloadStillParses) {
  const Fixture &F = fixture();
  ParsedCheckpoint PC = parseCheckpointFile(F.Payload); // bare v1
  EXPECT_EQ(PC.Checkpoint.TrackedClass, F.Ckpt.TrackedClass);
}

TEST(PersistFormatTest, EveryTruncationIsTypedAndDetected) {
  const std::string &Image = fixture().Image;
  // Every proper prefix must be rejected with a typed error; once the
  // full "swift-ckpt v2 " magic survives the cut, specifically as
  // Truncated (shorter cuts lose the magic itself and classify as
  // Corrupt or VersionMismatch — still typed, never accepted).
  for (size_t Cut = 0; Cut < Image.size();
       Cut += (Cut < 64 ? 1 : 37)) {
    std::string_view Prefix(Image.data(), Cut);
    LoadErrorKind K = kindOf(Prefix);
    if (Cut >= 14) {
      EXPECT_EQ(K, LoadErrorKind::Truncated) << "cut at " << Cut;
    }
  }
}

TEST(PersistFormatTest, EveryPayloadBitFlipIsCorrupt) {
  const Fixture &F = fixture();
  const size_t PayloadBegin = F.Image.find('\n') + 1;
  const size_t PayloadEnd = PayloadBegin + F.Payload.size();
  for (size_t I = 0; I < F.Image.size(); I += (I < 64 ? 1 : 29)) {
    std::string Mut = F.Image;
    Mut[I] = static_cast<char>(Mut[I] ^ (1u << (I % 8)));
    if (Mut[I] == F.Image[I])
      continue;
    LoadErrorKind K = kindOf(Mut); // must throw typed, never crash
    if (I >= PayloadBegin && I < PayloadEnd) {
      EXPECT_EQ(K, LoadErrorKind::Corrupt)
          << "payload flip at " << I << " escaped the CRC";
    }
  }
}

TEST(PersistFormatTest, DuplicatedSectionWithValidCrcIsCorrupt) {
  // Re-frame a payload with a duplicated line: the CRC validates (we
  // computed it over the mutant), so only the payload parser can object.
  const Fixture &F = fixture();
  size_t StepsAt = F.Payload.find("\nsteps ");
  ASSERT_NE(StepsAt, std::string::npos);
  size_t LineEnd = F.Payload.find('\n', StepsAt + 1);
  std::string Dup = F.Payload.substr(0, LineEnd + 1) +
                    F.Payload.substr(StepsAt + 1, LineEnd - StepsAt) +
                    F.Payload.substr(LineEnd + 1);
  EXPECT_EQ(kindOf(frameCheckpointV2(Dup)), LoadErrorKind::Corrupt);
}

TEST(PersistFormatTest, UnsupportedVersionIsVersionMismatch) {
  EXPECT_EQ(kindOf("swift-ckpt v3 12\nfuture stuff\n"),
            LoadErrorKind::VersionMismatch);
  EXPECT_EQ(kindOf("swift-ckpt v99\n"), LoadErrorKind::VersionMismatch);
}

TEST(PersistFormatTest, JunkAndEmptyAreTyped) {
  EXPECT_EQ(kindOf(""), LoadErrorKind::Truncated);
  EXPECT_EQ(kindOf("not a checkpoint at all\n"), LoadErrorKind::Corrupt);
  // Trailing garbage after a valid trailer: the frame no longer matches
  // its declared extent.
  EXPECT_EQ(kindOf(fixture().Image + "extra"), LoadErrorKind::Corrupt);
}

//===----------------------------------------------------------------------===//
// Mutation fuzz loop
//===----------------------------------------------------------------------===//

TEST(PersistFuzzTest, FiftySeedsOfMutationsNeverCrashAndClassify) {
  const std::string &Image = fixture().Image;
  const size_t PayloadBegin = Image.find('\n') + 1;
  const size_t PayloadEnd = Image.size() - 15; // CRC trailer
  uint64_t Truncations = 0, Flips = 0, Splices = 0;

  for (uint64_t Seed = 1; Seed <= 50; ++Seed) {
    Rng R(Seed * 0x9e3779b9u);
    std::string Mut = Image;
    switch (R.below(3)) {
    case 0: { // truncate
      Mut.resize(R.below(Mut.size()));
      ++Truncations;
      LoadErrorKind K = kindOf(Mut);
      if (Mut.size() >= 14) {
        EXPECT_EQ(K, LoadErrorKind::Truncated) << "seed " << Seed;
      }
      break;
    }
    case 1: { // flip one bit
      size_t I = R.below(Mut.size());
      char Old = Mut[I];
      Mut[I] = static_cast<char>(Old ^ (1u << R.below(8)));
      if (Mut[I] == Old)
        break; // zero mask; mutant equals original
      ++Flips;
      LoadErrorKind K = kindOf(Mut);
      if (I >= PayloadBegin && I < PayloadEnd) {
        EXPECT_EQ(K, LoadErrorKind::Corrupt) << "seed " << Seed;
      }
      break;
    }
    default: { // duplicate a random slice in place (grows the file)
      size_t At = R.below(Mut.size());
      size_t Len = 1 + R.below(std::min<size_t>(64, Mut.size() - At));
      Mut.insert(At, Mut.substr(At, Len));
      ++Splices;
      try {
        (void)parseCheckpointFile(Mut);
        ADD_FAILURE() << "seed " << Seed << ": grown mutant accepted";
      } catch (const CheckpointLoadError &) {
        // Typed rejection is the contract; the kind depends on where
        // the splice landed.
      }
      break;
    }
    }
  }
  // The switch is seed-driven; make sure all three mutators actually ran.
  EXPECT_GT(Truncations, 5u);
  EXPECT_GT(Flips, 5u);
  EXPECT_GT(Splices, 5u);
}

//===----------------------------------------------------------------------===//
// Checked-in corrupted-checkpoint corpus
//===----------------------------------------------------------------------===//

TEST(PersistCorpusTest, ReplaysEveryCheckedInCheckpoint) {
  // File-name prefixes encode the expected outcome: good-* and legacy-*
  // load; truncated-*, bitflip-*, dup-*, badversion-* raise the matching
  // typed error.
  std::vector<std::string> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(SWIFT_CORPUS_DIR))
    if (Entry.path().extension() == ".swiftckpt")
      Files.push_back(Entry.path().string());
  std::sort(Files.begin(), Files.end());
  ASSERT_GE(Files.size(), 6u) << "corpus lost its checkpoint files";

  for (const std::string &Path : Files) {
    std::string Stem = std::filesystem::path(Path).stem().string();
    SCOPED_TRACE(Path);
    if (Stem.rfind("good-", 0) == 0 || Stem.rfind("legacy-", 0) == 0) {
      ParsedCheckpoint PC = loadCheckpointFile(Path);
      EXPECT_FALSE(PC.Checkpoint.TrackedClass.empty());
      continue;
    }
    LoadErrorKind Want = LoadErrorKind::Corrupt;
    if (Stem.rfind("truncated-", 0) == 0)
      Want = LoadErrorKind::Truncated;
    else if (Stem.rfind("badversion-", 0) == 0)
      Want = LoadErrorKind::VersionMismatch;
    else
      ASSERT_TRUE(Stem.rfind("bitflip-", 0) == 0 ||
                  Stem.rfind("dup-", 0) == 0)
          << "unrecognized corpus file name scheme";
    try {
      (void)loadCheckpointFile(Path);
      ADD_FAILURE() << "corrupted checkpoint accepted";
    } catch (const CheckpointLoadError &E) {
      EXPECT_EQ(E.kind(), Want) << E.what();
    }
  }
}

//===----------------------------------------------------------------------===//
// Atomic save/load under injected faults
//===----------------------------------------------------------------------===//

TEST_F(PersistTest, SaveLoadRoundTripsOnDisk) {
  const Fixture &F = fixture();
  std::string P = path("ck.swiftckpt");
  saveCheckpointFile(P, *F.Prog, F.Ckpt);
  EXPECT_EQ(readWholeFile(P), F.Image);
  ParsedCheckpoint PC = loadCheckpointFile(P);
  EXPECT_EQ(checkpointToText(*PC.Prog, PC.Checkpoint), F.Payload);
}

TEST_F(PersistTest, MissingFileIsIoError) {
  try {
    (void)loadCheckpointFile(path("nope.swiftckpt"));
    FAIL() << "expected CheckpointLoadError";
  } catch (const CheckpointLoadError &E) {
    EXPECT_EQ(E.kind(), LoadErrorKind::IoError);
  }
}

TEST_F(PersistTest, TransientWriteFaultIsRetriedAway) {
  // nth(1): only the first write chunk of the first attempt fails; the
  // retry goes clean and the save must succeed end to end.
  const Fixture &F = fixture();
  std::string P = path("ck.swiftckpt");
  failpoint::ScopedArm Arm("ckpt.save.write=nth(1)");
  saveCheckpointFile(P, *F.Prog, F.Ckpt);
  EXPECT_EQ(failpoint::fires("ckpt.save.write"), 1u);
  EXPECT_EQ(readWholeFile(P), F.Image);
}

TEST_F(PersistTest, PersistentFaultThrowsAndPreservesOldFile) {
  const Fixture &F = fixture();
  std::string P = path("ck.swiftckpt");
  saveCheckpointFile(P, *F.Prog, F.Ckpt); // the old, good file

  {
    failpoint::ScopedArm Arm("ckpt.save.rename=always");
    EXPECT_THROW(saveCheckpointFile(P, *F.Prog, F.Ckpt),
                 std::runtime_error);
    EXPECT_GE(failpoint::fires("ckpt.save.rename"), 3u); // all attempts
  }
  // The old file survived, byte for byte, and no temp litter remains.
  EXPECT_EQ(readWholeFile(P), F.Image);
  size_t Entries = 0;
  for (const auto &E : std::filesystem::directory_iterator(Dir)) {
    (void)E;
    ++Entries;
  }
  EXPECT_EQ(Entries, 1u);
}

TEST_F(PersistTest, InjectedReadFaultIsIoError) {
  const Fixture &F = fixture();
  std::string P = path("ck.swiftckpt");
  saveCheckpointFile(P, *F.Prog, F.Ckpt);
  failpoint::ScopedArm Arm("ckpt.load.read=always");
  try {
    (void)loadCheckpointFile(P);
    FAIL() << "expected CheckpointLoadError";
  } catch (const CheckpointLoadError &E) {
    EXPECT_EQ(E.kind(), LoadErrorKind::IoError);
  }
}

TEST_F(PersistTest, ProgramTextSaveIsAtomicToo) {
  const Fixture &F = fixture();
  std::string P = path("prog.swiftir");
  saveProgramTextFile(P, *F.Prog);
  std::string Old = readWholeFile(P);
  EXPECT_EQ(Old, programToText(*F.Prog));

  failpoint::ScopedArm Arm("ir.save.flush=always");
  EXPECT_THROW(saveProgramTextFile(P, *F.Prog), std::runtime_error);
  EXPECT_EQ(readWholeFile(P), Old);
}

//===----------------------------------------------------------------------===//
// Parser count-sanity limits
//===----------------------------------------------------------------------===//

TEST(PersistHardeningTest, AbsurdSectionCountsFailFastWithoutAllocating) {
  const Fixture &F = fixture();
  // Mutate each count-bearing section header to claim ~10^12 entries;
  // the parser must reject on the size sanity check (fast, no reserve).
  for (const char *Section : {"states ", "edges ", "summaries "}) {
    size_t At = F.Payload.find(std::string("\n") + Section);
    ASSERT_NE(At, std::string::npos) << Section;
    size_t NumBegin = At + 1 + std::string(Section).size();
    size_t LineEnd = F.Payload.find('\n', NumBegin);
    std::string Mut = F.Payload.substr(0, NumBegin) + "999999999999" +
                      F.Payload.substr(LineEnd);
    try {
      (void)parseCheckpointText(Mut);
      FAIL() << Section << "count 999999999999 accepted";
    } catch (const std::runtime_error &E) {
      EXPECT_NE(std::string(E.what()).find("exceeds"), std::string::npos)
          << "wrong rejection for " << Section << ": " << E.what();
    }
  }
}

TEST(PersistHardeningTest, AbsurdNodeCountInProgramTextFailsFast) {
  std::string Text = programToText(*fixture().Prog);
  size_t At = Text.find(" nodes ");
  ASSERT_NE(At, std::string::npos);
  size_t NumBegin = At + 7;
  size_t NumEnd = Text.find(' ', NumBegin);
  // In range for the numeric parser, absurd versus the input size: only
  // the count-sanity limit can reject it.
  std::string Mut =
      Text.substr(0, NumBegin) + "9999999" + Text.substr(NumEnd);
  try {
    (void)parseProgramText(Mut);
    FAIL() << "node count 9999999 accepted";
  } catch (const std::runtime_error &E) {
    EXPECT_NE(std::string(E.what()).find("exceeds"), std::string::npos)
        << E.what();
  }
}

} // namespace
