//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the typestate abstract-domain building blocks: access
/// paths, path sets, abstract states, predicates (contradictions,
/// entailment, evaluation), kill specs (including the property that
/// unionWith computes exactly the pointwise-or of the kill functions),
/// and ignore sets.
///
//===----------------------------------------------------------------------===//

#include "support/Rng.h"
#include "typestate/IgnoreSet.h"
#include "typestate/KillSpec.h"
#include "typestate/Predicate.h"

#include <gtest/gtest.h>

using namespace swift;

namespace {

class DomainTest : public ::testing::Test {
protected:
  void SetUp() override {
    A = Syms.intern("a");
    B = Syms.intern("b");
    C = Syms.intern("c");
    F = Syms.intern("f");
    G = Syms.intern("g");
  }

  SymbolTable Syms;
  Symbol A, B, C, F, G;
};

TEST_F(DomainTest, AccessPathBasics) {
  AccessPath P0(A);
  AccessPath P1(A, F);
  AccessPath P2(A, F, G);
  EXPECT_EQ(P0.length(), 0u);
  EXPECT_EQ(P1.length(), 1u);
  EXPECT_EQ(P2.length(), 2u);
  EXPECT_TRUE(P0.isVar());
  EXPECT_FALSE(P1.isVar());
  EXPECT_TRUE(P2.usesField(F));
  EXPECT_TRUE(P2.usesField(G));
  EXPECT_FALSE(P1.usesField(G));
  EXPECT_EQ(P1.withBase(B), AccessPath(B, F));
  EXPECT_EQ(P0.extend(F), P1);
  EXPECT_EQ(P1.extend(G), P2);
  EXPECT_EQ(P2.str(Syms), "a.f.g");
  EXPECT_LT(P0, P1);
}

TEST_F(DomainTest, ApSetAlgebra) {
  ApSet S;
  S.insert(AccessPath(A));
  S.insert(AccessPath(B, F));
  S.insert(AccessPath(A, F, G));
  S.insert(AccessPath(A)); // dup
  EXPECT_EQ(S.size(), 3u);
  EXPECT_TRUE(S.contains(AccessPath(B, F)));

  ApSet T = S;
  T.eraseBase(A);
  EXPECT_EQ(T.size(), 1u);
  EXPECT_TRUE(T.contains(AccessPath(B, F)));

  ApSet U = S;
  U.eraseField(F);
  EXPECT_EQ(U.size(), 1u);
  EXPECT_TRUE(U.contains(AccessPath(A)));

  // Construction from an unsorted vector normalizes.
  ApSet V(std::vector<AccessPath>{AccessPath(B), AccessPath(A),
                                  AccessPath(B)});
  EXPECT_EQ(V.size(), 2u);
  EXPECT_EQ(*V.begin(), AccessPath(A));
}

TEST_F(DomainTest, PredContradictions) {
  TsPred P;
  EXPECT_TRUE(P.isTrue());
  EXPECT_TRUE(P.requireMust(AccessPath(A), true));
  // Must and must-not are disjoint: requiring both is a contradiction.
  EXPECT_FALSE(P.requireNot(AccessPath(A), true));

  TsPred Q;
  EXPECT_TRUE(Q.requireMust(AccessPath(A), false));
  EXPECT_TRUE(Q.requireNot(AccessPath(A), true));
  EXPECT_FALSE(Q.requireMust(AccessPath(A), true));

  TsPred R;
  EXPECT_TRUE(R.requireMay(0, A, true));
  EXPECT_TRUE(R.requireMay(0, A, true));  // idempotent
  EXPECT_FALSE(R.requireMay(0, A, false));
  EXPECT_TRUE(R.requireMay(1, A, false)); // different procedure: distinct
}

TEST_F(DomainTest, PredEntailment) {
  TsPred Strong, Weak;
  ASSERT_TRUE(Strong.requireMust(AccessPath(A), true));
  ASSERT_TRUE(Strong.requireNot(AccessPath(B), true));
  ASSERT_TRUE(Weak.requireMust(AccessPath(A), true));
  EXPECT_TRUE(Strong.implies(Weak));
  EXPECT_FALSE(Weak.implies(Strong));
  EXPECT_TRUE(Strong.implies(TsPred())); // everything implies true
  EXPECT_TRUE(Weak.implies(Weak));
}

TEST_F(DomainTest, PredConjoin) {
  TsPred P, Q;
  ASSERT_TRUE(P.requireMust(AccessPath(A), true));
  ASSERT_TRUE(Q.requireNot(AccessPath(B), true));
  ASSERT_TRUE(P.conjoin(Q));
  EXPECT_EQ(P.mustStatus(AccessPath(A)), ThreeVal::Yes);
  EXPECT_EQ(P.notStatus(AccessPath(B)), ThreeVal::Yes);

  TsPred Contra;
  ASSERT_TRUE(Contra.requireMust(AccessPath(A), false));
  EXPECT_FALSE(P.conjoin(Contra));
}

TEST_F(DomainTest, KillSpecBasics) {
  KillSpec K;
  EXPECT_TRUE(K.isEmpty());
  K.addBase(A);
  EXPECT_TRUE(K.kills(AccessPath(A)));
  EXPECT_TRUE(K.kills(AccessPath(A, F)));
  EXPECT_FALSE(K.kills(AccessPath(B, F)));

  K.addFieldEverywhere(F);
  EXPECT_TRUE(K.kills(AccessPath(B, F)));
  EXPECT_TRUE(K.kills(AccessPath(C, G, F)));
  EXPECT_FALSE(K.kills(AccessPath(B, G)));

  // Per-base override: base B is killed only on field G.
  K.setBaseFields(B, {G});
  EXPECT_TRUE(K.kills(AccessPath(B, G)));
  EXPECT_FALSE(K.kills(AccessPath(B, F)));
  // Other bases still follow the default.
  EXPECT_TRUE(K.kills(AccessPath(C, F)));
}

/// unionWith must be exactly the pointwise-or of the kill functions; this
/// is what makes sequential relation composition exact. Checked on
/// randomly built specs over a full path enumeration.
TEST_F(DomainTest, KillSpecUnionIsPointwiseOr) {
  std::vector<Symbol> Vars{A, B, C};
  std::vector<Symbol> Fields{F, G};
  std::vector<AccessPath> AllPaths;
  for (Symbol V : Vars) {
    AllPaths.push_back(AccessPath(V));
    for (Symbol F1 : Fields) {
      AllPaths.push_back(AccessPath(V, F1));
      for (Symbol F2 : Fields)
        AllPaths.push_back(AccessPath(V, F1, F2));
    }
  }

  Rng R(42);
  auto RandomSpec = [&]() {
    KillSpec K;
    for (Symbol V : Vars)
      if (R.chance(1, 4))
        K.addBase(V);
    for (Symbol F1 : Fields)
      if (R.chance(1, 4))
        K.addFieldEverywhere(F1);
    for (Symbol V : Vars)
      if (R.chance(1, 3)) {
        std::vector<Symbol> Fs;
        for (Symbol F1 : Fields)
          if (R.chance(1, 2))
            Fs.push_back(F1);
        K.setBaseFields(V, Fs);
      }
    return K;
  };

  for (int Trial = 0; Trial != 200; ++Trial) {
    KillSpec K1 = RandomSpec();
    KillSpec K2 = RandomSpec();
    KillSpec U = K1;
    U.unionWith(K2);
    for (const AccessPath &P : AllPaths)
      ASSERT_EQ(U.kills(P), K1.kills(P) || K2.kills(P))
          << "trial " << Trial << " path " << P.str(Syms) << "\nK1 "
          << K1.str(Syms) << "\nK2 " << K2.str(Syms) << "\nU "
          << U.str(Syms);
  }
}

TEST_F(DomainTest, KillSpecCanonicalEquality) {
  // Equal kill functions built differently compare equal.
  KillSpec K1, K2;
  K1.addFieldEverywhere(F);
  K1.setBaseFields(A, {F}); // same as the default: canonicalized away
  K2.addFieldEverywhere(F);
  EXPECT_EQ(K1, K2);

  KillSpec K3;
  K3.addBase(A);
  K3.setBaseFields(A, {F}); // subsumed by the base kill: ignored
  KillSpec K4;
  K4.addBase(A);
  EXPECT_EQ(K3, K4);
}

TEST_F(DomainTest, IgnoreSetSubsumption) {
  TsIgnoreSet S;
  EXPECT_TRUE(S.empty());

  TsPred Weak;
  ASSERT_TRUE(Weak.requireMust(AccessPath(A), true));
  TsPred Strong = Weak;
  ASSERT_TRUE(Strong.requireNot(AccessPath(B), true));

  EXPECT_TRUE(S.addPred(Weak));
  // Strong's states are already covered by Weak: not added.
  EXPECT_FALSE(S.addPred(Strong));
  EXPECT_EQ(S.size(), 1u);
  EXPECT_TRUE(S.coversPred(Strong));
  EXPECT_TRUE(S.coversPred(Weak));
  EXPECT_FALSE(S.coversPred(TsPred()));

  EXPECT_TRUE(S.addLambda());
  EXPECT_FALSE(S.addLambda());

  TsIgnoreSet All;
  All.makeAll();
  EXPECT_TRUE(All.coversPred(TsPred()));
  EXPECT_TRUE(All.containsLambda());

  TsIgnoreSet T;
  EXPECT_TRUE(T.unionWith(S));
  EXPECT_FALSE(T.unionWith(S)); // idempotent
}

} // namespace
