//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the concrete interpreter: typestate transitions and
/// error recording, heap fields, call/return and recursion bounds,
/// null-dereference termination, and schedule determinism.
///
//===----------------------------------------------------------------------===//

#include "concrete/Interpreter.h"
#include "lang/Lower.h"

#include <gtest/gtest.h>

using namespace swift;

namespace {

InterpResult run(const char *Src, uint64_t Seed = 1) {
  std::unique_ptr<Program> P = parseProgram(Src);
  InterpConfig C;
  C.Seed = Seed;
  return interpret(*P, C);
}

TEST(InterpTest, ProtocolViolationIsRecorded) {
  InterpResult R = run(R"(
    typestate File { start c; error e; c -open-> o; o -close-> c; }
    proc main() {
      a = new File;
      a.open();
      a.open();
    }
  )");
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.ErrorSites.size(), 1u);
  EXPECT_TRUE(R.ErrorSites.count(0));
}

TEST(InterpTest, CorrectUsageIsClean) {
  InterpResult R = run(R"(
    typestate File { start c; error e; c -open-> o; o -close-> c; }
    proc main() {
      a = new File;
      a.open();
      a.close();
      a.open();
      a.close();
    }
  )");
  EXPECT_TRUE(R.Completed);
  EXPECT_TRUE(R.ErrorSites.empty());
  EXPECT_EQ(R.ObjectsAllocated, 1u);
}

TEST(InterpTest, ErrorIsAbsorbingAndForeignMethodsIgnored) {
  InterpResult R = run(R"(
    typestate File { start c; error e; c -open-> o; o -close-> c; }
    proc main() {
      a = new File;
      a.open();
      a.open();
      a.close();     // already in error; no further transition
      a.whatever();  // foreign method: no effect
    }
  )");
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.ErrorSites.size(), 1u);
}

TEST(InterpTest, HeapFieldsStoreReferences) {
  InterpResult R = run(R"(
    typestate File { start c; error e; c -open-> o; o -close-> c; }
    typestate Box { start b; error be; }
    proc main() {
      f = new File;
      box = new Box;
      box.slot = f;
      g = box.slot;
      g.open();
      f.open();     // same object: double open through the alias
    }
  )");
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.ErrorSites.size(), 1u);
  EXPECT_TRUE(R.ErrorSites.count(0));
}

TEST(InterpTest, NullDereferenceTerminatesRun) {
  InterpResult R = run(R"(
    typestate File { start c; error e; c -open-> o; o -close-> c; }
    proc main() {
      a = null;
      a.open();      // halts here, like an uncaught NPE
      b = new File;
      b.open();
      b.open();      // never reached
    }
  )");
  EXPECT_TRUE(R.Completed);
  EXPECT_TRUE(R.ErrorSites.empty());
  EXPECT_EQ(R.ObjectsAllocated, 0u);
}

TEST(InterpTest, CallsPassReferencesAndReturnValues) {
  InterpResult R = run(R"(
    typestate File { start c; error e; c -open-> o; o -close-> c; }
    proc openIt(x) { x.open(); return x; }
    proc main() {
      a = new File;
      b = openIt(a);
      b.open();      // same object: error
    }
  )");
  EXPECT_TRUE(R.Completed);
  EXPECT_EQ(R.ErrorSites.size(), 1u);
}

TEST(InterpTest, MissingReturnYieldsNull) {
  InterpResult R = run(R"(
    typestate File { start c; error e; c -open-> o; o -close-> c; }
    proc nothing() { x = new File; }
    proc main() {
      a = nothing();
      a.open();      // a is null: run halts cleanly
    }
  )");
  EXPECT_TRUE(R.Completed);
  EXPECT_TRUE(R.ErrorSites.empty());
  EXPECT_EQ(R.ObjectsAllocated, 1u);
}

TEST(InterpTest, UnboundedRecursionHitsDepthBound) {
  std::unique_ptr<Program> P = parseProgram(R"(
    typestate File { start c; error e; }
    proc loop() { loop(); }
    proc main() { loop(); }
  )");
  InterpConfig C;
  C.Seed = 1;
  C.MaxDepth = 16;
  InterpResult R = interpret(*P, C);
  EXPECT_FALSE(R.Completed);
}

TEST(InterpTest, SchedulesAreDeterministicPerSeed) {
  const char *Src = R"(
    typestate File { start c; error e; c -open-> o; o -close-> c; }
    proc main() {
      a = new File;
      while (*) {
        if (*) { a.open(); } else { a.close(); }
      }
    }
  )";
  for (uint64_t Seed : {1u, 2u, 3u}) {
    InterpResult R1 = run(Src, Seed);
    InterpResult R2 = run(Src, Seed);
    EXPECT_EQ(R1.ErrorSites, R2.ErrorSites);
    EXPECT_EQ(R1.Steps, R2.Steps);
  }
  // Some schedule of the nondeterministic open/close dance must error.
  bool AnyError = false;
  for (uint64_t Seed = 1; Seed <= 50 && !AnyError; ++Seed)
    AnyError = !run(Src, Seed).ErrorSites.empty();
  EXPECT_TRUE(AnyError);
}

} // namespace
