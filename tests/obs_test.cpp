//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the observability layer (src/obs): the disabled-mode
/// zero-allocation contract, span nesting under ThreadPool concurrency
/// (also a TSan target for the lock-free trace buffers), Chrome-trace and
/// metrics-snapshot JSON round-trips through the bundled parser,
/// histogram bucket known-answer tests, and the failpoint-driven flush
/// write-failure path proving a trace I/O error never affects analysis
/// results.
///
//===----------------------------------------------------------------------===//

#include "genprog/Fuzzer.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "obs/TraceMerge.h"
#include "support/AtomicFile.h"
#include "support/FailPoint.h"
#include "support/ThreadPool.h"
#include "typestate/Runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <new>
#include <set>
#include <string>
#include <vector>

using namespace swift;
using namespace swift::obs;

//===----------------------------------------------------------------------===//
// Global allocation counter (for the disabled-mode zero-allocation test)
//===----------------------------------------------------------------------===//

namespace {
std::atomic<uint64_t> GAllocCount{0};
} // namespace

// noinline: if the optimizer inlines these replaced operators it pairs
// the visible std::free with the standard operator new it assumes
// callers used, and -Wmismatched-new-delete misfires (the replacement
// new also uses malloc, so the pairing is actually correct).
[[gnu::noinline]] void *operator new(std::size_t N) {
  GAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(N ? N : 1))
    return P;
  throw std::bad_alloc();
}

[[gnu::noinline]] void *operator new[](std::size_t N) {
  GAllocCount.fetch_add(1, std::memory_order_relaxed);
  if (void *P = std::malloc(N ? N : 1))
    return P;
  throw std::bad_alloc();
}

[[gnu::noinline]] void operator delete(void *P) noexcept { std::free(P); }
[[gnu::noinline]] void operator delete(void *P, std::size_t) noexcept {
  std::free(P);
}
[[gnu::noinline]] void operator delete[](void *P) noexcept { std::free(P); }
[[gnu::noinline]] void operator delete[](void *P, std::size_t) noexcept {
  std::free(P);
}

namespace {

//===----------------------------------------------------------------------===//
// Disabled-mode overhead contract
//===----------------------------------------------------------------------===//

TEST(TraceDisabledTest, HotPathDoesNotAllocate) {
  obs::TraceRecorder::instance().reset(); // ensure tracing is off
  obs::MetricsRegistry::instance().disable();
  ASSERT_FALSE(obs::tracingEnabled());
  ASSERT_FALSE(obs::metricsEnabled());

  // Resolve instruments up front — hot paths intern once, sample many.
  obs::Histogram *H = obs::MetricsRegistry::instance().histogram("t.h");
  obs::Gauge *G = obs::MetricsRegistry::instance().gauge("t.g");

  uint64_t Before = GAllocCount.load(std::memory_order_relaxed);
  for (int I = 0; I != 10'000; ++I) {
    obs::TraceSpan Span("test", "span", {"a", 1});
    obs::instant("test", "tick", {"b", 2});
    obs::counterEvent("test.ctr", "v", 3);
    if (obs::metricsEnabled()) { // the instrumentation-site idiom
      H->record(7);
      G->set(9);
    }
  }
  EXPECT_EQ(GAllocCount.load(std::memory_order_relaxed), Before)
      << "disabled-mode tracing must not allocate";

  // Enabled-mode metric recording is allocation-free too (relaxed
  // atomics only); only event *tracing* buffers allocate, chunk-wise.
  obs::MetricsRegistry::instance().enable();
  Before = GAllocCount.load(std::memory_order_relaxed);
  for (int I = 0; I != 10'000; ++I) {
    H->record(static_cast<uint64_t>(I));
    G->set(static_cast<uint64_t>(I));
  }
  EXPECT_EQ(GAllocCount.load(std::memory_order_relaxed), Before)
      << "histogram/gauge sampling must not allocate";
  obs::MetricsRegistry::instance().disable();
  obs::MetricsRegistry::instance().reset();
}

//===----------------------------------------------------------------------===//
// Histogram known-answer tests
//===----------------------------------------------------------------------===//

TEST(HistogramTest, BucketMappingKnownAnswers) {
  using H = obs::Histogram;
  // Bucket 0 holds exactly 0; bucket i >= 1 holds [2^(i-1), 2^i).
  EXPECT_EQ(H::bucketOf(0), 0u);
  EXPECT_EQ(H::bucketOf(1), 1u);
  EXPECT_EQ(H::bucketOf(2), 2u);
  EXPECT_EQ(H::bucketOf(3), 2u);
  EXPECT_EQ(H::bucketOf(4), 3u);
  EXPECT_EQ(H::bucketOf(7), 3u);
  EXPECT_EQ(H::bucketOf(8), 4u);
  EXPECT_EQ(H::bucketOf(1023), 10u);
  EXPECT_EQ(H::bucketOf(1024), 11u);
  EXPECT_EQ(H::bucketOf(UINT64_MAX), 64u);

  EXPECT_EQ(H::bucketLo(0), 0u);
  EXPECT_EQ(H::bucketHi(0), 0u);
  EXPECT_EQ(H::bucketLo(1), 1u);
  EXPECT_EQ(H::bucketHi(1), 1u);
  EXPECT_EQ(H::bucketLo(11), 1024u);
  EXPECT_EQ(H::bucketHi(11), 2047u);
  EXPECT_EQ(H::bucketLo(64), uint64_t{1} << 63);
  EXPECT_EQ(H::bucketHi(64), UINT64_MAX);
  // Every value falls inside its own bucket's bounds.
  for (uint64_t V : {uint64_t(0), uint64_t(1), uint64_t(5), uint64_t(100),
                     uint64_t(1u << 20), UINT64_MAX}) {
    unsigned B = H::bucketOf(V);
    EXPECT_GE(V, H::bucketLo(B)) << V;
    EXPECT_LE(V, H::bucketHi(B)) << V;
  }
}

TEST(HistogramTest, RecordAggregates) {
  obs::Histogram H;
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.min(), 0u); // empty histogram reports 0, not UINT64_MAX
  EXPECT_EQ(H.max(), 0u);

  for (uint64_t V : {uint64_t(0), uint64_t(1), uint64_t(3), uint64_t(3),
                     uint64_t(1000)})
    H.record(V);
  EXPECT_EQ(H.count(), 5u);
  EXPECT_EQ(H.sum(), 1007u);
  EXPECT_EQ(H.min(), 0u);
  EXPECT_EQ(H.max(), 1000u);
  EXPECT_EQ(H.bucketCount(0), 1u);  // the 0
  EXPECT_EQ(H.bucketCount(1), 1u);  // the 1
  EXPECT_EQ(H.bucketCount(2), 2u);  // the two 3s
  EXPECT_EQ(H.bucketCount(10), 1u); // 1000 in [512, 1024)

  H.reset();
  EXPECT_EQ(H.count(), 0u);
  EXPECT_EQ(H.sum(), 0u);
  EXPECT_EQ(H.bucketCount(2), 0u);
}

TEST(GaugeTest, LastValueAndRunningMax) {
  obs::Gauge G;
  G.set(5);
  G.set(9);
  G.set(2);
  EXPECT_EQ(G.value(), 2u);
  EXPECT_EQ(G.max(), 9u);
  G.reset();
  EXPECT_EQ(G.value(), 0u);
  EXPECT_EQ(G.max(), 0u);
}

//===----------------------------------------------------------------------===//
// Concurrent span nesting + trace JSON round-trip
//===----------------------------------------------------------------------===//

struct SpanIv {
  uint64_t Tid, Ts, End;
};

TEST(TraceTest, ConcurrentSpansNestAndRoundTrip) {
  obs::TraceRecorder &R = obs::TraceRecorder::instance();
  R.start();
  {
    obs::TraceSpan Outer("test", "outer", {"which", 1});
    ThreadPool Pool(4);
    for (int I = 0; I != 64; ++I)
      Pool.submit([] {
        obs::TraceSpan Inner("test", "inner");
        obs::instant("test", "tick", {"i", 7});
      });
    Pool.wait();
    Outer.setArg("done", 1);
  }
  R.stop();
  // outer + 64 * (pool.task + inner + tick) + queue-depth counters.
  EXPECT_GE(R.eventCount(), 193u);

  json::Value Root = json::parse(R.toJson()); // throws on malformed JSON
  const json::Value *Events = Root.find("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());

  std::vector<SpanIv> Tasks; // pool.task spans, per worker thread
  std::vector<SpanIv> Inner;
  std::set<uint64_t> Tids;
  uint64_t Ticks = 0, ThreadNames = 0, Outers = 0;
  for (const json::Value &E : Events->Arr) {
    ASSERT_TRUE(E.isObject());
    const json::Value *Name = E.find("name");
    const json::Value *Ph = E.find("ph");
    ASSERT_TRUE(Name && Name->isString());
    ASSERT_TRUE(Ph && Ph->isString());
    if (Ph->Str == "M") {
      ThreadNames += Name->Str == "thread_name";
      continue;
    }
    const json::Value *Tid = E.find("tid");
    const json::Value *Ts = E.find("ts");
    ASSERT_TRUE(Tid && Tid->isNumber());
    ASSERT_TRUE(Ts && Ts->isNumber());
    Tids.insert(Tid->asU64());
    if (Ph->Str == "X") {
      const json::Value *Dur = E.find("dur");
      ASSERT_TRUE(Dur && Dur->isNumber());
      SpanIv Iv{Tid->asU64(), Ts->asU64(), Ts->asU64() + Dur->asU64()};
      if (Name->Str == "pool.task")
        Tasks.push_back(Iv);
      else if (Name->Str == "inner")
        Inner.push_back(Iv);
      else if (Name->Str == "outer") {
        ++Outers;
        // setArg surfaced in the serialized args object.
        const json::Value *Args = E.find("args");
        ASSERT_TRUE(Args && Args->isObject());
        const json::Value *Done = Args->find("done");
        ASSERT_TRUE(Done && Done->isNumber());
        EXPECT_EQ(Done->asU64(), 1u);
      }
    } else if (Ph->Str == "i" && Name->Str == "tick") {
      ++Ticks;
      const json::Value *Args = E.find("args");
      ASSERT_TRUE(Args && Args->isObject());
      const json::Value *IArg = Args->find("i");
      ASSERT_TRUE(IArg && IArg->isNumber());
      EXPECT_EQ(IArg->asU64(), 7u);
    }
  }
  EXPECT_EQ(Outers, 1u);
  EXPECT_EQ(Inner.size(), 64u);
  EXPECT_EQ(Tasks.size(), 64u);
  EXPECT_EQ(Ticks, 64u);
  // Thread buffers register lazily (a worker that never emitted has no
  // buffer), so thread-name metadata matches the tids actually seen:
  // the main thread plus every worker a task landed on.
  EXPECT_GE(Tids.size(), 2u);
  EXPECT_EQ(ThreadNames, Tids.size());

  // Nesting: every inner span lies within some pool.task span on the
  // same thread (the pool wraps each executed task body in a span).
  for (const SpanIv &I : Inner) {
    bool Nested = false;
    for (const SpanIv &T : Tasks)
      if (T.Tid == I.Tid && T.Ts <= I.Ts && I.End <= T.End) {
        Nested = true;
        break;
      }
    EXPECT_TRUE(Nested) << "inner span on tid " << I.Tid
                        << " not nested in any pool.task span";
  }
  R.reset();
}

TEST(TraceTest, StartResetsTimelineAndBuffers) {
  obs::TraceRecorder &R = obs::TraceRecorder::instance();
  R.start();
  obs::instant("test", "first");
  R.stop();
  EXPECT_EQ(R.eventCount(), 1u);
  R.start(); // drops the buffered event, re-zeroes the clock
  EXPECT_EQ(R.eventCount(), 0u);
  obs::instant("test", "second");
  R.stop();
  EXPECT_EQ(R.eventCount(), 1u);
  json::Value Root = json::parse(R.toJson());
  const json::Value *Events = Root.find("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());
  bool SawSecond = false;
  for (const json::Value &E : Events->Arr) {
    const json::Value *Name = E.find("name");
    ASSERT_TRUE(Name && Name->isString());
    EXPECT_NE(Name->Str, "first");
    SawSecond |= Name->Str == "second";
  }
  EXPECT_TRUE(SawSecond);
  R.reset();
}

//===----------------------------------------------------------------------===//
// Metrics snapshot round-trip
//===----------------------------------------------------------------------===//

TEST(MetricsTest, SnapshotJsonRoundTrip) {
  obs::MetricsRegistry &MR = obs::MetricsRegistry::instance();
  MR.reset();
  MR.enable();
  obs::Gauge *G = MR.gauge("test.gauge");
  G->set(5);
  G->set(3);
  obs::Histogram *H = MR.histogram("test.hist");
  uint64_t Sum = 0, Count = 0;
  for (uint64_t V : {uint64_t(0), uint64_t(1), uint64_t(2), uint64_t(3),
                     uint64_t(1000), uint64_t(1024)}) {
    H->record(V);
    Sum += V;
    ++Count;
  }
  Stats S;
  S.counter("test.counter") = 42;

  json::Value Root = json::parse(MR.snapshotJson(&S));
  const json::Value *Format = Root.find("format");
  const json::Value *Version = Root.find("version");
  ASSERT_TRUE(Format && Format->isString());
  ASSERT_TRUE(Version && Version->isNumber());
  EXPECT_EQ(Format->Str, "swift-metrics");
  EXPECT_EQ(Version->asU64(), 1u);

  const json::Value *Counters = Root.find("counters");
  ASSERT_TRUE(Counters && Counters->isObject());
  const json::Value *Ctr = Counters->find("test.counter");
  ASSERT_TRUE(Ctr && Ctr->isNumber());
  EXPECT_EQ(Ctr->asU64(), 42u);

  const json::Value *Gauges = Root.find("gauges");
  ASSERT_TRUE(Gauges && Gauges->isObject());
  const json::Value *TG = Gauges->find("test.gauge");
  ASSERT_TRUE(TG && TG->isObject());
  EXPECT_EQ(TG->find("value")->asU64(), 3u);
  EXPECT_EQ(TG->find("max")->asU64(), 5u);

  const json::Value *Hists = Root.find("histograms");
  ASSERT_TRUE(Hists && Hists->isObject());
  const json::Value *TH = Hists->find("test.hist");
  ASSERT_TRUE(TH && TH->isObject());
  EXPECT_EQ(TH->find("count")->asU64(), Count);
  EXPECT_EQ(TH->find("sum")->asU64(), Sum);
  EXPECT_EQ(TH->find("min")->asU64(), 0u);
  EXPECT_EQ(TH->find("max")->asU64(), 1024u);
  const json::Value *Buckets = TH->find("buckets");
  ASSERT_TRUE(Buckets && Buckets->isArray());
  uint64_t BucketTotal = 0;
  for (const json::Value &B : Buckets->Arr) {
    ASSERT_TRUE(B.isObject());
    const json::Value *N = B.find("n");
    ASSERT_TRUE(N && N->isNumber());
    EXPECT_GT(N->asU64(), 0u); // only non-empty buckets are emitted
    BucketTotal += N->asU64();
    EXPECT_LE(B.find("lo")->asU64(), B.find("hi")->asU64());
  }
  EXPECT_EQ(BucketTotal, Count);

  MR.disable();
  MR.reset();
}

//===----------------------------------------------------------------------===//
// JSON parser corners (the bundled parser backs tracecat + the tests)
//===----------------------------------------------------------------------===//

TEST(JsonTest, ParseDumpRoundTrip) {
  const char *Src = "{\"a\":[1,2.5,true,null,\"s\\n\\u0041\"],"
                    "\"b\":{\"nested\":-3}}";
  json::Value V = json::parse(Src);
  std::string Dumped = json::dump(V);
  json::Value V2 = json::parse(Dumped); // dump output reparses
  const json::Value *A = V2.find("a");
  ASSERT_TRUE(A && A->isArray());
  ASSERT_EQ(A->Arr.size(), 5u);
  EXPECT_EQ(A->Arr[0].asU64(), 1u);
  EXPECT_EQ(A->Arr[4].Str, "s\nA");
  EXPECT_EQ(V2.find("b")->find("nested")->Num, -3.0);
}

TEST(JsonTest, IntegersAbove2To53RoundTripExactly) {
  // 2^53 is the last integer a double represents exactly; the lexemes
  // around it (and UINT64_MAX) must survive parse -> dump unchanged. A
  // double-only number model would collapse 9007199254740993 to ...992.
  const char *Cases[] = {
      "9007199254740992",     // 2^53
      "9007199254740993",     // 2^53 + 1: first double casualty
      "18446744073709551615", // UINT64_MAX
      "-9007199254740993",    // 2^53 + 1, negated
      "-9223372036854775808", // INT64_MIN
  };
  for (const char *Lexeme : Cases) {
    json::Value V = json::parse(Lexeme);
    EXPECT_EQ(json::dump(V), Lexeme) << Lexeme;
  }

  json::Value U = json::parse("9007199254740993");
  EXPECT_EQ(U.NR, json::Value::NumRep::U64);
  EXPECT_EQ(U.asU64(), 9007199254740993ull);
  json::Value I = json::parse("-9007199254740993");
  EXPECT_EQ(I.NR, json::Value::NumRep::I64);
  EXPECT_EQ(I.I, -9007199254740993ll);

  // The factories hit the same exact paths as the parser.
  EXPECT_EQ(json::dump(json::Value::u64(18446744073709551615ull)),
            "18446744073709551615");
  EXPECT_EQ(json::dump(json::Value::i64(-9007199254740993ll)),
            "-9007199254740993");

  // Non-integer lexemes still take the double path.
  EXPECT_EQ(json::parse("9007199254740993.0").NR,
            json::Value::NumRep::Dbl);
  EXPECT_EQ(json::parse("9e3").NR, json::Value::NumRep::Dbl);
}

TEST(JsonTest, RejectsMalformedInput) {
  EXPECT_THROW(json::parse(""), std::runtime_error);
  EXPECT_THROW(json::parse("{"), std::runtime_error);
  EXPECT_THROW(json::parse("[1,]"), std::runtime_error);
  EXPECT_THROW(json::parse("{\"a\":1} trailing"), std::runtime_error);
  EXPECT_THROW(json::parse("\"\\q\""), std::runtime_error);
  EXPECT_THROW(json::parse("nul"), std::runtime_error);
  EXPECT_THROW(json::parse("1.2.3"), std::runtime_error);
}

//===----------------------------------------------------------------------===//
// Flush failure: trace I/O errors never affect analysis results
//===----------------------------------------------------------------------===//

TEST(TraceTest, FlushFailureDoesNotAffectAnalysis) {
  FuzzConfig FC;
  FC.Seed = 11;
  FC.NumProcs = 4;
  FC.StmtsPerProc = 10;
  std::unique_ptr<Program> Prog = generateFuzzProgram(FC);
  TsContext Ctx(*Prog, Prog->spec(0).name());

  TsRunResult Baseline = runTypestateTd(Ctx);

  obs::TraceRecorder &R = obs::TraceRecorder::instance();
  R.start();
  TsRunResult Traced = runTypestateTd(Ctx);
  R.stop();
  ASSERT_GT(R.eventCount(), 0u);

  const std::string Path = "obs_test.tmp.trace.json";
  {
    failpoint::ScopedArm Arm("obs.flush.open=always");
    std::string Err;
    EXPECT_FALSE(R.flushToFile(Path, &Err));
    EXPECT_FALSE(Err.empty());
  }
  // The same flush succeeds once the fault is disarmed, and the file is
  // a valid Chrome trace.
  std::string Err;
  ASSERT_TRUE(R.flushToFile(Path, &Err)) << Err;
  json::Value Root = json::parse(readWholeFile(Path));
  EXPECT_TRUE(Root.find("traceEvents"));
  std::remove(Path.c_str());

  // Tracing — including the failed flush — changed nothing about the
  // analysis itself.
  EXPECT_EQ(Traced.ErrorSites, Baseline.ErrorSites);
  EXPECT_EQ(Traced.ErrorPoints, Baseline.ErrorPoints);
  EXPECT_EQ(Traced.MainExit, Baseline.MainExit);
  EXPECT_EQ(Traced.Steps, Baseline.Steps);
  EXPECT_EQ(Traced.TdSummaries, Baseline.TdSummaries);
  R.reset();
}

//===----------------------------------------------------------------------===//
// Trace merging (obs/TraceMerge.h)
//===----------------------------------------------------------------------===//

TEST(TraceMergeTest, DuplicateProcessNamesGetOccurrenceSuffixes) {
  // Two incarnations of the same restarted worker emit the same embedded
  // process_name; the third input has no embedded name at all and falls
  // back to its label.
  const char *WorkerTrace =
      "{\"traceEvents\":["
      "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
      "\"args\":{\"name\":\"shard-2\"}},"
      "{\"name\":\"solve\",\"cat\":\"bu\",\"ph\":\"X\",\"ts\":5,"
      "\"dur\":7,\"pid\":1,\"tid\":1}"
      "]}";
  const char *Unnamed =
      "{\"traceEvents\":["
      "{\"name\":\"tick\",\"cat\":\"misc\",\"ph\":\"i\",\"ts\":9,"
      "\"pid\":1,\"tid\":1}"
      "]}";
  TraceMergeStats Stats;
  std::string Out = mergeTraces({{"a.json", WorkerTrace},
                                 {"b.json", WorkerTrace},
                                 {"c.json", Unnamed}},
                                &Stats);
  EXPECT_EQ(Stats.Renamed, 1u);

  json::Value Root = json::parse(Out);
  const json::Value *Events = Root.find("traceEvents");
  ASSERT_TRUE(Events && Events->isArray());
  // 3 process_name records + 2 worker events + 1 unnamed event.
  EXPECT_EQ(Events->Arr.size(), 6u);
  EXPECT_EQ(Stats.Events, 6u);

  std::vector<std::string> Names;
  std::set<uint64_t> NamePids;
  for (const json::Value &E : Events->Arr) {
    if (E.find("name")->Str != "process_name")
      continue;
    Names.push_back(E.find("args")->find("name")->Str);
    NamePids.insert(E.find("pid")->asU64());
  }
  EXPECT_EQ(Names, (std::vector<std::string>{"shard-2", "shard-2 #2",
                                             "c.json"}));
  EXPECT_EQ(NamePids, (std::set<uint64_t>{1, 2, 3}));

  // Every non-metadata event was re-pidded to its input's track.
  for (const json::Value &E : Events->Arr)
    if (E.find("name")->Str == "solve") {
      EXPECT_GE(E.find("pid")->asU64(), 1u);
    }
}

TEST(TraceMergeTest, MalformedInputIsAHardErrorNamingTheLabel) {
  try {
    mergeTraces({{"good.json", "{\"traceEvents\":[]}"},
                 {"bad.json", "{\"notATrace\":true}"}});
    FAIL() << "malformed input accepted";
  } catch (const std::runtime_error &E) {
    EXPECT_NE(std::string(E.what()).find("bad.json"), std::string::npos)
        << E.what();
  }
  EXPECT_THROW(mergeTraces({{"x.json", "not json at all"}}),
               std::runtime_error);
}

TEST(TraceTest, SetProcessNameIsEmbeddedInJson) {
  obs::TraceRecorder &R = obs::TraceRecorder::instance();
  R.start();
  obs::instant("test", "ping");
  R.stop();
  R.setProcessName("swift-shard-worker 3 inc 1");
  json::Value Root = json::parse(R.toJson());
  bool Found = false;
  for (const json::Value &E : Root.find("traceEvents")->Arr)
    if (E.find("name")->Str == "process_name") {
      EXPECT_EQ(E.find("args")->find("name")->Str,
                "swift-shard-worker 3 inc 1");
      Found = true;
    }
  EXPECT_TRUE(Found);
  R.setProcessName("swift"); // restore the default for later tests
  R.reset();
}

TEST(MetricsTest, SnapshotWriteFailureIsAdvisory) {
  obs::MetricsRegistry &MR = obs::MetricsRegistry::instance();
  MR.reset();
  MR.gauge("test.g2")->set(1);
  const std::string Path = "obs_test.tmp.metrics.json";
  {
    failpoint::ScopedArm Arm("obs.metrics.rename=always");
    std::string Err;
    EXPECT_FALSE(MR.writeSnapshot(Path, nullptr, &Err));
    EXPECT_FALSE(Err.empty());
  }
  std::string Err;
  ASSERT_TRUE(MR.writeSnapshot(Path, nullptr, &Err)) << Err;
  json::Value Root = json::parse(readWholeFile(Path));
  EXPECT_EQ(Root.find("format")->Str, "swift-metrics");
  std::remove(Path.c_str());
  MR.reset();
}

} // namespace
