//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the flat open-addressing containers (support/FlatHash.h)
/// backing the tabulation solver's interner, path-edge tables, and memo
/// caches. The interesting cases are the ones a solver run exercises
/// millions of times: dedup through findOrInsert, growth across many
/// rehashes, full-hash collisions resolved by the caller's equality, and
/// insertion-order iteration of FlatMap32.
///
//===----------------------------------------------------------------------===//

#include "support/FlatHash.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

using namespace swift;

namespace {

TEST(HashIndexTest, FindOnEmptyIsNpos) {
  HashIndex Idx;
  EXPECT_EQ(Idx.find(42, [](uint32_t) { return true; }), HashIndex::Npos);
  EXPECT_EQ(Idx.size(), 0u);
  EXPECT_TRUE(Idx.empty());
}

TEST(HashIndexTest, InternPatternDedupsAcrossGrowth) {
  // The solver's interner: arena + index, id = dense position. Insert
  // 10k keys, then re-probe all of them — growth must never lose or
  // duplicate an entry.
  std::vector<uint64_t> Arena;
  HashIndex Idx;
  auto Intern = [&](uint64_t Key) {
    uint64_t H = mix64(Key);
    auto [Id, Inserted] = Idx.findOrInsert(
        H, static_cast<uint32_t>(Arena.size()),
        [&](uint32_t I) { return Arena[I] == Key; });
    if (Inserted)
      Arena.push_back(Key);
    return Id;
  };

  for (uint64_t K = 0; K != 10000; ++K)
    EXPECT_EQ(Intern(K * 7919), K) << "fresh keys get dense ids in order";
  EXPECT_EQ(Idx.size(), 10000u);
  for (uint64_t K = 0; K != 10000; ++K)
    EXPECT_EQ(Intern(K * 7919), K) << "re-interning is a lookup, not a copy";
  EXPECT_EQ(Arena.size(), 10000u);
}

TEST(HashIndexTest, EqualHashesResolveThroughCallerEquality) {
  // Distinct keys forced onto one hash: probing must step over the
  // earlier entry and match through Eq, not through the hash alone.
  std::vector<std::string> Arena;
  HashIndex Idx;
  auto Intern = [&](const std::string &Key) {
    auto [Id, Inserted] = Idx.findOrInsert(
        /*Hash=*/0xdeadbeef, static_cast<uint32_t>(Arena.size()),
        [&](uint32_t I) { return Arena[I] == Key; });
    if (Inserted)
      Arena.push_back(Key);
    return Id;
  };
  EXPECT_EQ(Intern("alpha"), 0u);
  EXPECT_EQ(Intern("beta"), 1u);
  EXPECT_EQ(Intern("gamma"), 2u);
  EXPECT_EQ(Intern("alpha"), 0u);
  EXPECT_EQ(Intern("beta"), 1u);
  EXPECT_EQ(Idx.size(), 3u);
}

TEST(HashIndexTest, ReserveThenInsertAndClear) {
  HashIndex Idx;
  Idx.reserve(1000);
  for (uint32_t K = 0; K != 1000; ++K)
    Idx.insert(mix64(K), K);
  EXPECT_EQ(Idx.size(), 1000u);
  for (uint32_t K = 0; K != 1000; ++K)
    EXPECT_EQ(Idx.find(mix64(K), [&](uint32_t V) { return V == K; }), K);
  Idx.clear();
  EXPECT_TRUE(Idx.empty());
  EXPECT_EQ(Idx.find(mix64(3), [](uint32_t) { return true; }),
            HashIndex::Npos);
}

TEST(FlatMap32Test, GetOrCreateAndFind) {
  FlatMap32<uint64_t> M;
  EXPECT_EQ(M.find(7), nullptr);
  M.getOrCreate(7) = 70;
  M.getOrCreate(3) = 30;
  ++M.getOrCreate(7); // Existing entry: same slot.
  ASSERT_NE(M.find(7), nullptr);
  EXPECT_EQ(*M.find(7), 71u);
  ASSERT_NE(M.find(3), nullptr);
  EXPECT_EQ(*M.find(3), 30u);
  EXPECT_EQ(M.find(4), nullptr);
  EXPECT_EQ(M.size(), 2u);
  const FlatMap32<uint64_t> &CM = M;
  ASSERT_NE(CM.find(3), nullptr);
  EXPECT_EQ(*CM.find(3), 30u);
}

TEST(FlatMap32Test, IterationIsInsertionOrder) {
  FlatMap32<uint32_t> M;
  // Keys deliberately non-monotonic: iteration must follow first-insert
  // order (what snapshot code then sorts explicitly), not key order.
  const uint32_t Keys[] = {90, 2, 57, 31, 4};
  for (uint32_t I = 0; I != 5; ++I)
    M.getOrCreate(Keys[I]) = I;
  M.getOrCreate(57) = 99; // Update must not re-order.
  std::vector<uint32_t> Seen;
  M.forEach([&](uint32_t K, uint32_t) { Seen.push_back(K); });
  EXPECT_EQ(Seen, std::vector<uint32_t>(Keys, Keys + 5));
  EXPECT_EQ(M.keys(), Seen);
  EXPECT_EQ(M.valAt(2), 99u);
}

TEST(FlatMap32Test, SurvivesRehashWithHeavyValues) {
  FlatMap32<std::vector<uint32_t>> M;
  for (uint32_t K = 0; K != 5000; ++K)
    M.getOrCreate(K).push_back(K * 3);
  EXPECT_EQ(M.size(), 5000u);
  for (uint32_t K = 0; K != 5000; ++K) {
    auto *V = M.find(K);
    ASSERT_NE(V, nullptr) << K;
    ASSERT_EQ(V->size(), 1u);
    EXPECT_EQ((*V)[0], K * 3);
  }
}

TEST(BitVecTest, SetGetAcrossWordBoundaries) {
  BitVec B;
  B.assign(130, false);
  EXPECT_EQ(B.size(), 130u);
  for (size_t I : {size_t{0}, size_t{63}, size_t{64}, size_t{129}})
    EXPECT_FALSE(B.get(I));
  B.set(63);
  B.set(64);
  B.set(129);
  EXPECT_TRUE(B.get(63));
  EXPECT_TRUE(B.get(64));
  EXPECT_TRUE(B.get(129));
  EXPECT_FALSE(B.get(0));
  EXPECT_FALSE(B.get(65));
  B.assign(4, true);
  EXPECT_EQ(B.size(), 4u);
  for (size_t I = 0; I != 4; ++I)
    EXPECT_TRUE(B.get(I));
}

} // namespace

