//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Property tests of the paper's central correctness claim (Theorem 3.1
/// and the equivalence of Algorithm 1 to a conventional top-down
/// analysis): on randomly generated programs, SWIFT computes exactly the
/// same result as TD for every (k, theta), the analysis results SWIFT does
/// compute are a subset of TD's facts, and the unpruned bottom-up analysis
/// instantiated on the initial state agrees as well.
///
//===----------------------------------------------------------------------===//

#include "framework/Tabulation.h"
#include "genprog/Fuzzer.h"
#include "genprog/Generator.h"
#include "typestate/Runner.h"
#include "typestate/TsAnalysis.h"

#include <gtest/gtest.h>

#include <set>
#include <tuple>

using namespace swift;

namespace {

using Fact = std::tuple<ProcId, NodeId, TsAbstractState, TsAbstractState>;

std::set<Fact> collectFacts(const TsContext &Ctx, uint64_t K,
                            uint64_t Theta, unsigned Threads = 1) {
  Budget Bud(50'000'000, 60.0);
  Stats Stat;
  TabulationSolver<TsAnalysis>::Config Cfg;
  Cfg.K = K;
  Cfg.Theta = Theta;
  Cfg.BuThreads = Threads;
  TabulationSolver<TsAnalysis> Solver(Ctx, Ctx.program(), Ctx.callGraph(),
                                      Cfg, Bud, Stat);
  EXPECT_TRUE(Solver.run()) << "budget exhausted";
  std::set<Fact> Facts;
  Solver.forEachFact([&](ProcId P, NodeId N, const TsAbstractState &E,
                         const TsAbstractState &C) {
    Facts.insert({P, N, E, C});
  });
  return Facts;
}

class CoincidenceTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CoincidenceTest, SwiftEqualsTopDownOnFuzzedPrograms) {
  FuzzConfig FC;
  FC.Seed = GetParam();
  FC.NumProcs = 3 + GetParam() % 3;
  FC.StmtsPerProc = 5 + GetParam() % 5;
  FC.NumVars = 3;
  std::unique_ptr<Program> Prog = generateFuzzProgram(FC);
  TsContext Ctx(*Prog, Prog->symbols().intern("File"));

  TsRunResult Td = runTypestateTd(Ctx);
  ASSERT_FALSE(Td.Timeout);
  std::set<Fact> TdFacts = collectFacts(Ctx, NoBuTrigger, 1);

  // Sample the parallel bottom-up solver's worker count {1, 2, 4} by
  // seed: coincidence must hold at every thread count.
  const unsigned Threads = 1u << (GetParam() % 3);

  for (auto [K, Theta] : {std::pair<uint64_t, uint64_t>{0, 1},
                          {1, 1},
                          {2, 1},
                          {1, 2},
                          {3, 2},
                          {2, 8}}) {
    TsRunResult Sw =
        runTypestateSwift(Ctx, K, Theta, RunLimits{}, false, Threads);
    ASSERT_FALSE(Sw.Timeout);
    EXPECT_EQ(Sw.MainExit, Td.MainExit)
        << "seed=" << FC.Seed << " k=" << K << " theta=" << Theta
        << " threads=" << Threads;
    EXPECT_EQ(Sw.ErrorSites, Td.ErrorSites)
        << "seed=" << FC.Seed << " k=" << K << " theta=" << Theta
        << " threads=" << Threads;

    // The asynchronous variant (Section 7's parallelization) must agree
    // as well — the summary install point is immaterial to the result.
    TsRunResult SwAsync = runTypestateSwift(Ctx, K, Theta, RunLimits{},
                                            /*AsyncBu=*/true, Threads);
    ASSERT_FALSE(SwAsync.Timeout);
    EXPECT_EQ(SwAsync.MainExit, Td.MainExit)
        << "async seed=" << FC.Seed << " k=" << K << " theta=" << Theta
        << " threads=" << Threads;
    EXPECT_EQ(SwAsync.ErrorSites, Td.ErrorSites)
        << "async seed=" << FC.Seed << " k=" << K << " theta=" << Theta
        << " threads=" << Threads;

    // Every fact SWIFT computes is a fact TD computes (SWIFT only *skips*
    // re-analyses; it never invents states).
    std::set<Fact> SwFacts = collectFacts(Ctx, K, Theta, Threads);
    for (const Fact &F : SwFacts)
      EXPECT_TRUE(TdFacts.count(F))
          << "seed=" << FC.Seed << " k=" << K << " theta=" << Theta
          << " spurious fact in proc "
          << Prog->symbols().text(
                 Prog->proc(std::get<0>(F)).name())
          << " node " << std::get<1>(F) << ": entry "
          << std::get<2>(F).str(*Prog) << " cur "
          << std::get<3>(F).str(*Prog);
  }
}

TEST_P(CoincidenceTest, BottomUpAgreesOnFuzzedPrograms) {
  FuzzConfig FC;
  FC.Seed = GetParam() * 7919 + 13;
  FC.NumProcs = 2 + GetParam() % 3;
  FC.StmtsPerProc = 5 + GetParam() % 6;
  std::unique_ptr<Program> Prog = generateFuzzProgram(FC);
  TsContext Ctx(*Prog, Prog->symbols().intern("File"));

  TsRunResult Td = runTypestateTd(Ctx);
  RunLimits BuLimits;
  BuLimits.MaxSteps = 2'000'000;
  BuLimits.MaxSeconds = 5.0;
  TsRunResult Bu = runTypestateBu(Ctx, BuLimits);
  ASSERT_FALSE(Td.Timeout);
  if (Bu.Timeout)
    GTEST_SKIP() << "bottom-up blow-up on seed " << FC.Seed;
  EXPECT_EQ(Bu.MainExit, Td.MainExit) << "seed=" << FC.Seed;
  EXPECT_EQ(Bu.ErrorSites, Td.ErrorSites) << "seed=" << FC.Seed;
}

TEST_P(CoincidenceTest, SwiftEqualsTopDownOnWorkloads) {
  GenConfig GC;
  GC.Seed = GetParam();
  GC.Layers = 2;
  GC.ProcsPerLayer = 3;
  GC.NumDrivers = 3;
  GC.ObjectsPerDriver = 3;
  GC.MixedCallPerMille = 400;
  GC.BugPerMille = 300;
  std::unique_ptr<Program> Prog = generateWorkload(GC);
  TsContext Ctx(*Prog, Prog->symbols().intern("File"));

  TsRunResult Td = runTypestateTd(Ctx);
  ASSERT_FALSE(Td.Timeout);
  for (auto [K, Theta] :
       {std::pair<uint64_t, uint64_t>{1, 1}, {3, 1}, {5, 2}}) {
    TsRunResult Sw = runTypestateSwift(Ctx, K, Theta);
    ASSERT_FALSE(Sw.Timeout);
    EXPECT_EQ(Sw.MainExit, Td.MainExit)
        << "seed=" << GC.Seed << " k=" << K << " theta=" << Theta;
    EXPECT_EQ(Sw.ErrorSites, Td.ErrorSites)
        << "seed=" << GC.Seed << " k=" << K << " theta=" << Theta;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CoincidenceTest,
                         ::testing::Range<uint64_t>(1, 41));

} // namespace
