//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Directed tests of framework mechanics that the property tests only
/// exercise statistically: the observation manifest (errors on diverging
/// paths inside served callees), Lambda flow through never-returning
/// callees, trigger postponement, budget exhaustion, and summary
/// degradation soundness.
///
//===----------------------------------------------------------------------===//

#include "framework/Tabulation.h"
#include "lang/Lower.h"
#include "typestate/Runner.h"
#include "typestate/TsAnalysis.h"

#include <gtest/gtest.h>

using namespace swift;

namespace {

struct VariantResult {
  std::set<SiteId> Errors;
  std::set<TsAbstractState> MainExit;
  uint64_t Served = 0;
  bool Finished = true;
};

VariantResult runVariant(const TsContext &Ctx, uint64_t K, uint64_t Theta,
                         bool Manifest, uint64_t MaxSteps = UINT64_MAX) {
  Budget Bud(MaxSteps, 120.0);
  Stats Stat;
  TabulationSolver<TsAnalysis>::Config Cfg;
  Cfg.K = K;
  Cfg.Theta = Theta;
  Cfg.ObservationManifest = Manifest;
  TabulationSolver<TsAnalysis> Solver(Ctx, Ctx.program(), Ctx.callGraph(),
                                      Cfg, Bud, Stat);
  VariantResult R;
  R.Finished = Solver.run();
  R.Served = Stat.get("td.bu_served_calls");
  TState Err = Ctx.spec().errorState();
  Solver.forEachFact([&](ProcId, NodeId, const TsAbstractState &,
                         const TsAbstractState &Cur) {
    if (!Cur.isLambda() && Cur.tstate() == Err)
      R.Errors.insert(Cur.site());
  });
  Solver.forEachObserved([&](ProcId, NodeId, const TsAbstractState &S) {
    R.Errors.insert(S.site());
  });
  Solver.forEachSummary(Ctx.program().mainProc(),
                        [&](const TsAbstractState &E,
                            const TsAbstractState &X) {
                          if (E.isLambda())
                            R.MainExit.insert(X);
                        });
  return R;
}

/// A callee that errs and then diverges: the error never reaches its
/// exit relations, so only the observation manifest can report it for
/// summary-served contexts.
const char *DivergingError = R"(
  typestate File { start c; error e; c -open-> o; o -close-> c; }
  proc spin(x) { spin(x); }
  proc bad(f) {
    if (*) {
      f.close();    // protocol violation (still closed)
      spin(f);      // ... and the path never returns
    }
  }
  proc main() {
    a = new File; bad(a);
    b = new File; bad(b);
    d = new File; bad(d);
    g = new File; bad(g);
  }
)";

TEST(FrameworkTest, ObservationManifestCatchesDivergingErrors) {
  std::unique_ptr<Program> Prog = parseProgram(DivergingError);
  TsContext Ctx(*Prog, Prog->symbols().intern("File"));

  // TD ground truth: all four sites err.
  TsRunResult Td = runTypestateTd(Ctx);
  ASSERT_EQ(Td.ErrorSites.size(), 4u);

  // SWIFT with the manifest reports exactly the same sites, and still
  // serves calls from summaries.
  VariantResult WithManifest = runVariant(Ctx, 1, 8, true);
  EXPECT_EQ(WithManifest.Errors, Td.ErrorSites);

  // The plain (paper-shaped) variant serves calls but loses the
  // diverging-path errors for the served contexts — the gap the manifest
  // closes. (If it served nothing the comparison would be vacuous.)
  VariantResult Plain = runVariant(Ctx, 1, 8, false);
  ASSERT_GT(Plain.Served, 0u);
  EXPECT_LT(Plain.Errors.size(), Td.ErrorSites.size());
  // Both agree on main's exit states regardless (Theorem 3.1 is about
  // values, not observations).
  EXPECT_EQ(Plain.MainExit, WithManifest.MainExit);
}

TEST(FrameworkTest, NeverReturningCalleeBlocksLambda) {
  std::unique_ptr<Program> Prog = parseProgram(R"(
    typestate File { start c; error e; c -open-> o; o -close-> c; }
    proc forever() { forever(); }
    proc main() {
      a = new File;
      forever();
      b = new File;   // unreachable in any terminating sense
    }
  )");
  TsContext Ctx(*Prog, Prog->symbols().intern("File"));
  TsRunResult Td = runTypestateTd(Ctx);
  // Nothing flows past the non-returning call: main's exit is empty.
  EXPECT_TRUE(Td.MainExit.empty());

  // The same through bottom-up summaries.
  TsRunResult Bu = runTypestateBu(Ctx);
  ASSERT_FALSE(Bu.Timeout);
  EXPECT_TRUE(Bu.MainExit.empty());
}

TEST(FrameworkTest, TriggerPostponedUntilCalleesSeen) {
  // f's callee g is only reachable through f itself; on the very first
  // flood of distinct states into f, g has not been entered yet, so the
  // first trigger attempts postpone (the paper's Section 4 scenario 1).
  std::unique_ptr<Program> Prog = parseProgram(R"(
    typestate File { start c; error e; c -open-> o; o -close-> c; }
    proc g(x) { x.open(); x.close(); }
    proc f(y) { g(y); }
    proc main() {
      a = new File; f(a);
      b = new File; f(b);
      d = new File; f(d);
      h = new File; f(h);
    }
  )");
  TsContext Ctx(*Prog, Prog->symbols().intern("File"));
  TsRunResult Sw = runTypestateSwift(Ctx, 1, 2);
  // Eventually triggers (g gets entered during f's own top-down
  // analysis); some earlier attempts may postpone. Either way the result
  // is coincident.
  TsRunResult Td = runTypestateTd(Ctx);
  EXPECT_EQ(Sw.MainExit, Td.MainExit);
  EXPECT_GE(Sw.Stat.get("swift.bu_triggers") +
                Sw.Stat.get("swift.bu_postponed"),
            1u);
}

TEST(FrameworkTest, BudgetExhaustionIsReportedNotFatal) {
  std::unique_ptr<Program> Prog = parseProgram(R"(
    typestate File { start c; error e; c -open-> o; o -close-> c; }
    proc use(x) { x.open(); x.close(); }
    proc main() {
      while (*) {
        v = new File;
        use(v);
      }
    }
  )");
  TsContext Ctx(*Prog, Prog->symbols().intern("File"));
  RunLimits Tight;
  Tight.MaxSteps = 10;
  TsRunResult R = runTypestateSwift(Ctx, 2, 1, Tight);
  EXPECT_TRUE(R.Timeout);
  // Partial results are well-formed (no crash, counts consistent).
  EXPECT_LE(R.Steps, 12u);
}

/// A pathological recursive SCC whose pruned summaries would keep
/// refining: degradation must kick in, and the result must still be
/// coincident with TD.
TEST(FrameworkTest, DegradedSummariesStayCoincident) {
  std::unique_ptr<Program> Prog = parseProgram(R"(
    typestate File { start c; error e; c -open-> o; o -close-> c; }
    proc twist(x, y) {
      if (*) { x.open(); x.close(); }
      if (*) { twist(y, x); }
      if (*) { y.open(); y.close(); }
    }
    proc main() {
      a = new File; b = new File;
      twist(a, b);
      twist(b, a);
      d = new File; twist(d, d);
      g = new File; twist(g, a);
    }
  )");
  TsContext Ctx(*Prog, Prog->symbols().intern("File"));
  TsRunResult Td = runTypestateTd(Ctx);
  for (uint64_t Theta : {1u, 2u}) {
    TsRunResult Sw = runTypestateSwift(Ctx, 1, Theta);
    ASSERT_FALSE(Sw.Timeout);
    EXPECT_EQ(Sw.MainExit, Td.MainExit) << "theta " << Theta;
    EXPECT_EQ(Sw.ErrorSites, Td.ErrorSites) << "theta " << Theta;
  }
}

/// TD as a special case: with the trigger disabled no bottom-up work
/// happens at all.
TEST(FrameworkTest, PureTopDownNeverTriggers) {
  std::unique_ptr<Program> Prog = parseProgram(R"(
    typestate File { start c; error e; c -open-> o; o -close-> c; }
    proc use(x) { x.open(); x.close(); }
    proc main() {
      a = new File; use(a);
      b = new File; use(b);
      d = new File; use(d);
    }
  )");
  TsContext Ctx(*Prog, Prog->symbols().intern("File"));
  TsRunResult Td = runTypestateTd(Ctx);
  EXPECT_EQ(Td.Stat.get("swift.bu_triggers"), 0u);
  EXPECT_EQ(Td.Stat.get("td.bu_served_calls"), 0u);
  EXPECT_EQ(Td.BuRelations, 0u);
}

} // namespace
