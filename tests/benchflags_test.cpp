//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Unit tests of the benchmark binaries' flag parsing (bench/BenchCommon.h)
/// and the underlying strict numeric parsers (support/CliParse.h).
/// Regression coverage for the atoi-era bugs: "--threads=-1" silently
/// became UINT_MAX workers, "--budget=abc" became a 0-second budget, and
/// misspelled flags were ignored entirely.
///
//===----------------------------------------------------------------------===//

#include "bench/BenchCommon.h"
#include "support/CliParse.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace swift;

namespace {

/// Runs parseOptionsInto over \p Args (argv[0] supplied).
bool parse(std::vector<std::string> Args, bench::Options &O,
           std::string &Err) {
  Args.insert(Args.begin(), "bench-test");
  std::vector<char *> Argv;
  for (std::string &A : Args)
    Argv.push_back(A.data());
  return bench::parseOptionsInto(static_cast<int>(Argv.size()), Argv.data(),
                                 O, Err);
}

TEST(BenchFlagsTest, AcceptsValidFlags) {
  bench::Options O;
  std::string Err;
  ASSERT_TRUE(parse({"--budget=2.5", "--threads=8", "--bench=linear"}, O,
                    Err))
      << Err;
  EXPECT_EQ(O.BudgetSeconds, 2.5);
  EXPECT_EQ(O.Threads, 8u);
  EXPECT_EQ(O.Only, "linear");
  EXPECT_FALSE(O.ShowHelp);
}

TEST(BenchFlagsTest, JsonOutParsesStrictly) {
  bench::Options O;
  std::string Err;
  ASSERT_TRUE(parse({"--json-out=out/bench.json"}, O, Err)) << Err;
  EXPECT_EQ(O.JsonOut, "out/bench.json");

  // An empty path is an error, not a silently-disabled writer.
  bench::Options Empty;
  EXPECT_FALSE(parse({"--json-out="}, Empty, Err));
  EXPECT_NE(Err.find("--json-out"), std::string::npos) << Err;
  EXPECT_TRUE(Empty.JsonOut.empty());

  // Misspellings stay hard errors (the atoi-era lesson).
  for (const char *Flag :
       {"--json-out", "--jsonout=x", "--json_out=x", "--json-out x"}) {
    bench::Options Bad;
    EXPECT_FALSE(parse({Flag}, Bad, Err)) << Flag;
    EXPECT_NE(Err.find("unknown flag"), std::string::npos) << Err;
  }
}

TEST(BenchFlagsTest, BenchFilterAcceptsCommaLists) {
  bench::Options O;
  std::string Err;
  ASSERT_TRUE(parse({"--bench=jpat-p,elevator,javasrc-p"}, O, Err)) << Err;
  EXPECT_TRUE(bench::matchesOnly(O, "jpat-p"));
  EXPECT_TRUE(bench::matchesOnly(O, "elevator"));
  EXPECT_TRUE(bench::matchesOnly(O, "javasrc-p"));
  // Entries are exact names, not substrings.
  EXPECT_FALSE(bench::matchesOnly(O, "jpat"));
  EXPECT_FALSE(bench::matchesOnly(O, "javasrc"));
  EXPECT_FALSE(bench::matchesOnly(O, "avrora"));

  bench::Options Single;
  ASSERT_TRUE(parse({"--bench=avrora"}, Single, Err)) << Err;
  EXPECT_TRUE(bench::matchesOnly(Single, "avrora"));
  EXPECT_FALSE(bench::matchesOnly(Single, "avr"));

  bench::Options None;
  ASSERT_TRUE(parse({}, None, Err)) << Err;
  EXPECT_TRUE(bench::matchesOnly(None, "anything"));
}

TEST(BenchFlagsTest, DefaultsSurviveEmptyCommandLine) {
  bench::Options O;
  std::string Err;
  ASSERT_TRUE(parse({}, O, Err)) << Err;
  EXPECT_EQ(O.BudgetSeconds, 15.0);
  EXPECT_EQ(O.Threads, 1u);
  EXPECT_TRUE(O.Only.empty());
}

TEST(BenchFlagsTest, HelpSetsFlagInsteadOfParsingFurther) {
  bench::Options O;
  std::string Err;
  ASSERT_TRUE(parse({"--help"}, O, Err)) << Err;
  EXPECT_TRUE(O.ShowHelp);
}

TEST(BenchFlagsTest, RejectsMalformedNumerics) {
  // Each case must fail with a message naming the offending value; none may
  // silently clamp, wrap, or zero the option.
  const char *Bad[] = {
      "--threads=-1",   // negative: atoi would have yielded huge unsigned
      "--threads=0",    // below the [1, 1024] range
      "--threads=4096", // above the range
      "--threads=x",    // not a number
      "--threads=2x",   // trailing garbage
      "--threads=",     // empty value
      "--budget=abc",   // not a number
      "--budget=-3",    // negative seconds
      "--budget=1e",    // truncated exponent
      "--budget=",      // empty value
  };
  for (const char *Flag : Bad) {
    bench::Options O;
    std::string Err;
    EXPECT_FALSE(parse({Flag}, O, Err)) << Flag;
    EXPECT_NE(Err.find('\''), std::string::npos)
        << "error should quote the bad value: " << Err;
  }
}

TEST(BenchFlagsTest, RejectsUnknownFlags) {
  for (const char *Flag :
       {"--thread=2", "--budgets=1", "-threads=2", "bench", "--"}) {
    bench::Options O;
    std::string Err;
    EXPECT_FALSE(parse({Flag}, O, Err)) << Flag;
    EXPECT_NE(Err.find("unknown flag"), std::string::npos) << Err;
  }
}

TEST(BenchFlagsTest, LaterFlagsOverrideEarlier) {
  bench::Options O;
  std::string Err;
  ASSERT_TRUE(parse({"--threads=2", "--threads=3"}, O, Err)) << Err;
  EXPECT_EQ(O.Threads, 3u);
}

TEST(CliParseTest, ParseU64) {
  uint64_t V = 7;
  EXPECT_TRUE(cli::parseU64("0", V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(cli::parseU64("18446744073709551615", V)); // UINT64_MAX
  EXPECT_EQ(V, UINT64_MAX);
  EXPECT_FALSE(cli::parseU64("18446744073709551616", V)); // overflow
  EXPECT_FALSE(cli::parseU64("", V));
  EXPECT_FALSE(cli::parseU64("-1", V));
  EXPECT_FALSE(cli::parseU64("12a", V));
}

TEST(CliParseTest, ParseUnsignedRange) {
  unsigned V = 7;
  EXPECT_TRUE(cli::parseUnsigned("4", V, 1, 1024));
  EXPECT_EQ(V, 4u);
  EXPECT_TRUE(cli::parseUnsigned("1", V, 1, 1024));
  EXPECT_TRUE(cli::parseUnsigned("1024", V, 1, 1024));
  EXPECT_FALSE(cli::parseUnsigned("0", V, 1, 1024));
  EXPECT_FALSE(cli::parseUnsigned("1025", V, 1, 1024));
  EXPECT_FALSE(cli::parseUnsigned("-2", V, 1, 1024));
}

TEST(CliParseTest, ParseNonNegDouble) {
  double V = 7;
  EXPECT_TRUE(cli::parseNonNegDouble("0", V));
  EXPECT_EQ(V, 0.0);
  EXPECT_TRUE(cli::parseNonNegDouble("2.5", V));
  EXPECT_EQ(V, 2.5);
  EXPECT_TRUE(cli::parseNonNegDouble("1e3", V));
  EXPECT_EQ(V, 1000.0);
  EXPECT_FALSE(cli::parseNonNegDouble("-0.5", V));
  EXPECT_FALSE(cli::parseNonNegDouble("nan", V));
  EXPECT_FALSE(cli::parseNonNegDouble("inf", V));
  EXPECT_FALSE(cli::parseNonNegDouble("1.5s", V));
  EXPECT_FALSE(cli::parseNonNegDouble("", V));
}

TEST(CliParseTest, MatchValueFlag) {
  std::string_view V;
  EXPECT_TRUE(cli::matchValueFlag("--budget=15", "--budget=", V));
  EXPECT_EQ(V, "15");
  EXPECT_TRUE(cli::matchValueFlag("--budget=", "--budget=", V));
  EXPECT_EQ(V, "");
  EXPECT_FALSE(cli::matchValueFlag("--budgets=15", "--budget=", V));
  EXPECT_FALSE(cli::matchValueFlag("--budget", "--budget=", V));
}

} // namespace
