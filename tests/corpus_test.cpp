//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Replays the checked-in reproducer corpus (tests/corpus/*.swiftir).
/// Each file was produced by `swift-difftest --inject-bug` and then
/// delta-debugged, so it encodes a regression the oracle once caught:
///
///  * replayed as-is the analyses are correct, so the oracle is clean —
///    this pins down that the *current* analyses agree on these programs;
///  * replayed with the injected transfer-function fault re-enabled, the
///    oracle must report a violation of the kind recorded in the file's
///    `# violation:` header — this pins down that the oracle still
///    catches the divergence the file was reduced for.
///
/// SWIFT_CORPUS_DIR is injected by tests/CMakeLists.txt.
///
//===----------------------------------------------------------------------===//

#include "difftest/Difftest.h"
#include "typestate/Transfer.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

using namespace swift;
using namespace swift::difftest;

namespace {

struct InjectBugScope {
  InjectBugScope() { test::InjectTsCallWeakUpdateBug.store(true); }
  ~InjectBugScope() { test::InjectTsCallWeakUpdateBug.store(false); }
};

std::vector<std::string> corpusFiles() {
  std::vector<std::string> Files;
  for (const auto &Entry :
       std::filesystem::directory_iterator(SWIFT_CORPUS_DIR))
    if (Entry.path().extension() == ".swiftir")
      Files.push_back(Entry.path().string());
  std::sort(Files.begin(), Files.end());
  return Files;
}

/// Extracts KIND from the reproducer's "# violation: KIND config=..." line.
std::string headerViolationKind(const std::string &Path) {
  std::ifstream IS(Path);
  std::string Line;
  const std::string Prefix = "# violation: ";
  while (std::getline(IS, Line)) {
    if (Line.rfind(Prefix, 0) != 0)
      continue;
    std::string Rest = Line.substr(Prefix.size());
    return Rest.substr(0, Rest.find(' '));
  }
  return "";
}

/// Step-only budgets keep the replay deterministic; the reduced programs
/// are tiny, so none of these limits is ever approached.
OracleOptions replayOptions() {
  OracleOptions OO;
  OO.Limits.MaxSteps = 3'000'000;
  OO.Limits.MaxSeconds = 3600.0;
  OO.Schedules = 4;
  return OO;
}

TEST(CorpusTest, CorpusIsNonEmpty) {
  EXPECT_GE(corpusFiles().size(), 2u);
}

TEST(CorpusTest, ReproducersAreCleanOnTheFixedAnalyses) {
  for (const std::string &Path : corpusFiles()) {
    SCOPED_TRACE(Path);
    OracleResult R = replayFile(Path, replayOptions());
    EXPECT_GT(R.RunsDone, 0u);
    for (const Violation &V : R.Violations)
      ADD_FAILURE() << "[" << checkKindName(V.Kind) << "] " << V.Config
                    << ": " << V.Detail;
  }
}

TEST(CorpusTest, ReproducersStillTripTheOracleUnderTheInjectedFault) {
  InjectBugScope Bug;
  for (const std::string &Path : corpusFiles()) {
    SCOPED_TRACE(Path);
    std::string Want = headerViolationKind(Path);
    ASSERT_FALSE(Want.empty()) << "missing '# violation:' header";
    OracleResult R = replayFile(Path, replayOptions());
    bool Found = false;
    for (const Violation &V : R.Violations)
      Found |= checkKindName(V.Kind) == Want;
    EXPECT_TRUE(Found) << "expected a " << Want << " violation, got "
                       << R.Violations.size() << " other(s)";
  }
}

} // namespace
