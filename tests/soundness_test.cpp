//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Soundness property tests against the concrete interpreter: every
/// protocol violation observed in any concrete execution schedule must be
/// reported by the top-down, SWIFT, and (when it finishes) bottom-up
/// analyses.
///
//===----------------------------------------------------------------------===//

#include "concrete/Interpreter.h"
#include "genprog/Fuzzer.h"
#include "genprog/Generator.h"
#include "typestate/Runner.h"

#include <gtest/gtest.h>

using namespace swift;

namespace {

std::set<SiteId> concreteErrors(const Program &Prog, unsigned Schedules) {
  std::set<SiteId> Errors;
  for (unsigned S = 0; S != Schedules; ++S) {
    InterpConfig IC;
    IC.Seed = S + 1;
    IC.MaxSteps = 20000;
    IC.MaxDepth = 40;
    InterpResult R = interpret(Prog, IC);
    if (R.Completed)
      Errors.insert(R.ErrorSites.begin(), R.ErrorSites.end());
  }
  return Errors;
}

void expectSubset(const std::set<SiteId> &Concrete,
                  const std::set<SiteId> &Reported, const char *What,
                  uint64_t Seed) {
  for (SiteId H : Concrete)
    EXPECT_TRUE(Reported.count(H))
        << What << " missed concrete error at site h" << H << " (seed "
        << Seed << ")";
}

class SoundnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SoundnessTest, AnalysesCoverConcreteErrorsOnFuzzedPrograms) {
  FuzzConfig FC;
  FC.Seed = GetParam() * 104729 + 7;
  FC.NumProcs = 3 + GetParam() % 3;
  FC.StmtsPerProc = 5 + GetParam() % 5;
  FC.NumVars = 3;
  std::unique_ptr<Program> Prog = generateFuzzProgram(FC);
  TsContext Ctx(*Prog, Prog->symbols().intern("File"));

  std::set<SiteId> Concrete = concreteErrors(*Prog, 40);

  TsRunResult Td = runTypestateTd(Ctx);
  ASSERT_FALSE(Td.Timeout);
  expectSubset(Concrete, Td.ErrorSites, "TD", FC.Seed);

  TsRunResult Sw = runTypestateSwift(Ctx, 2, 1);
  ASSERT_FALSE(Sw.Timeout);
  expectSubset(Concrete, Sw.ErrorSites, "SWIFT", FC.Seed);

  RunLimits BuLimits;
  BuLimits.MaxSteps = 5'000'000;
  BuLimits.MaxSeconds = 20.0;
  TsRunResult Bu = runTypestateBu(Ctx, BuLimits);
  if (!Bu.Timeout)
    expectSubset(Concrete, Bu.ErrorSites, "BU", FC.Seed);
}

TEST_P(SoundnessTest, AnalysesCoverConcreteErrorsOnWorkloads) {
  GenConfig GC;
  GC.Seed = GetParam();
  GC.Layers = 2;
  GC.ProcsPerLayer = 3;
  GC.NumDrivers = 2;
  GC.ObjectsPerDriver = 3;
  GC.BugPerMille = 600;
  GC.MixedCallPerMille = 300;
  std::unique_ptr<Program> Prog = generateWorkload(GC);
  TsContext Ctx(*Prog, Prog->symbols().intern("File"));

  std::set<SiteId> Concrete = concreteErrors(*Prog, 30);

  TsRunResult Sw = runTypestateSwift(Ctx, 3, 1);
  ASSERT_FALSE(Sw.Timeout);
  expectSubset(Concrete, Sw.ErrorSites, "SWIFT", GC.Seed);
}

/// Clean workloads (no injected bugs, no unknown-alias merges) must verify:
/// the analysis reports no errors at all, and neither does any execution.
TEST_P(SoundnessTest, CleanWorkloadsVerify) {
  GenConfig GC;
  GC.Seed = GetParam();
  GC.Layers = 2;
  GC.ProcsPerLayer = 3;
  GC.NumDrivers = 2;
  GC.ObjectsPerDriver = 3;
  GC.BugPerMille = 0;
  GC.MixedCallPerMille = 0;
  std::unique_ptr<Program> Prog = generateWorkload(GC);
  TsContext Ctx(*Prog, Prog->symbols().intern("File"));

  EXPECT_TRUE(concreteErrors(*Prog, 10).empty());
  TsRunResult Sw = runTypestateSwift(Ctx, 3, 1);
  ASSERT_FALSE(Sw.Timeout);
  EXPECT_TRUE(Sw.ErrorSites.empty()) << "seed " << GC.Seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, SoundnessTest,
                         ::testing::Range<uint64_t>(1, 31));

} // namespace
