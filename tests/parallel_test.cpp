//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Tests of the parallel bottom-up solver and the asynchronous hybrid:
///
///  - The SCC-wavefront scheduler is deterministic: summaries are
///    bit-identical for every thread count, on the paper's running example
///    and on generated workloads, with and without pruning.
///  - Asynchronous bottom-up runs charge the one shared budget: the
///    recorded step count covers the workers' node visits (regression for
///    the old code, which gave each worker a fresh budget with the same
///    caps and so both exceeded the requested limit and under-reported),
///    and a hard step cap bounds the whole hybrid run.
///
//===----------------------------------------------------------------------===//

#include "framework/RelationalSolver.h"
#include "framework/Tabulation.h"
#include "genprog/Generator.h"
#include "lang/Lower.h"
#include "typestate/Runner.h"
#include "typestate/TsAnalysis.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

using namespace swift;

namespace {

using Solver = RelationalSolver<TsAnalysis>;

const char *PaperExample = R"(
  typestate File {
    start closed; error err;
    closed -open-> opened;
    opened -close-> closed;
  }
  proc main() {
    v1 = new File; foo(v1);
    v2 = new File; foo(v2);
    v3 = new File; foo(v3);
  }
  proc foo(f) { f.open(); f.close(); }
)";

bool sameSummary(const Solver::Summary &A, const Solver::Summary &B) {
  return A.Rels == B.Rels && A.Sigma == B.Sigma &&
         A.LambdaExit == B.LambdaExit && A.ObsRels == B.ObsRels &&
         A.SigmaAll == B.SigmaAll;
}

/// A full-program bottom-up solve bundled with the budget and stats the
/// solver references.
struct Solve {
  Budget Bud{200'000'000, 120.0};
  Stats Stat;
  std::unique_ptr<Solver> S;
};

/// Solves the whole program bottom-up with \p Threads workers and, when a
/// baseline is given, checks every summary is bit-identical to it.
void solveAndCompare(const TsContext &Ctx, uint64_t Theta,
                     unsigned Threads, const Solve *Baseline,
                     std::unique_ptr<Solve> &Out) {
  Out = std::make_unique<Solve>();
  Out->S = std::make_unique<Solver>(
      Ctx, Ctx.program(), Ctx.callGraph(), Theta,
      [](ProcId) -> const std::unordered_map<TsAbstractState, uint64_t> * {
        return nullptr;
      },
      Out->Bud, Out->Stat, DefaultMaxRelsPerPoint,
      /*CollectObservations=*/true, Threads);
  std::vector<ProcId> All =
      Ctx.callGraph().reachableFrom(Ctx.program().mainProc());
  ASSERT_TRUE(Out->S->run(All)) << "budget exhausted";
  if (!Baseline)
    return;
  for (ProcId P = 0; P != Ctx.program().numProcs(); ++P) {
    ASSERT_EQ(Out->S->hasSummary(P), Baseline->S->hasSummary(P))
        << "threads=" << Threads << " proc=" << P;
    if (Baseline->S->hasSummary(P)) {
      EXPECT_TRUE(sameSummary(Out->S->summary(P), Baseline->S->summary(P)))
          << "summary differs: threads=" << Threads << " proc=" << P
          << " theta=" << Theta;
    }
  }
}

TEST(ParallelBuTest, PaperExampleSummariesBitIdentical) {
  std::unique_ptr<Program> Prog = parseProgram(PaperExample);
  TsContext Ctx(*Prog, Prog->symbols().intern("File"));
  for (uint64_t Theta : {NoPruning, uint64_t(2)}) {
    std::unique_ptr<Solve> Base, Par;
    solveAndCompare(Ctx, Theta, 1, nullptr, Base);
    for (unsigned T : {2u, 4u})
      solveAndCompare(Ctx, Theta, T, Base.get(), Par);
  }
}

TEST(ParallelBuTest, WorkloadSummariesBitIdentical) {
  // Three generator configs with different call-DAG shapes (wide, deep,
  // recursive-heavy); pruned solve so the mid-size ones stay cheap.
  GenConfig Wide;
  Wide.Seed = 11;
  Wide.Layers = 2;
  Wide.ProcsPerLayer = 8;
  Wide.NumDrivers = 4;
  Wide.ObjectsPerDriver = 3;
  GenConfig Deep;
  Deep.Seed = 22;
  Deep.Layers = 6;
  Deep.ProcsPerLayer = 3;
  Deep.NumDrivers = 3;
  Deep.ObjectsPerDriver = 2;
  GenConfig Mixed;
  Mixed.Seed = 33;
  Mixed.Layers = 4;
  Mixed.ProcsPerLayer = 5;
  Mixed.NumDrivers = 4;
  Mixed.ObjectsPerDriver = 3;
  Mixed.MixedCallPerMille = 500;
  Mixed.BugPerMille = 300;

  for (const GenConfig &GC : {Wide, Deep, Mixed}) {
    std::unique_ptr<Program> Prog = generateWorkload(GC);
    TsContext Ctx(*Prog, Prog->symbols().intern("File"));
    std::unique_ptr<Solve> Base, Par;
    solveAndCompare(Ctx, 2, 1, nullptr, Base);
    for (unsigned T : {2u, 4u})
      solveAndCompare(Ctx, 2, T, Base.get(), Par);
  }
}

TEST(ParallelBuTest, RunnerResultsMatchAcrossThreadCounts) {
  GenConfig GC;
  GC.Seed = 7;
  GC.Layers = 3;
  GC.ProcsPerLayer = 4;
  GC.NumDrivers = 3;
  GC.ObjectsPerDriver = 2;
  std::unique_ptr<Program> Prog = generateWorkload(GC);
  TsContext Ctx(*Prog, Prog->symbols().intern("File"));

  RunLimits L;
  L.MaxSteps = 50'000'000;
  L.MaxSeconds = 60.0;
  TsRunResult Base = runTypestateBu(Ctx, L, 1);
  ASSERT_FALSE(Base.Timeout);
  for (unsigned T : {2u, 4u}) {
    TsRunResult R = runTypestateBu(Ctx, L, T);
    ASSERT_FALSE(R.Timeout) << "threads=" << T;
    EXPECT_EQ(R.MainExit, Base.MainExit) << "threads=" << T;
    EXPECT_EQ(R.ErrorSites, Base.ErrorSites) << "threads=" << T;
    EXPECT_EQ(R.BuRelations, Base.BuRelations) << "threads=" << T;
    // The wavefront performs exactly the same solves, so even the charged
    // step count is identical.
    EXPECT_EQ(R.Steps, Base.Steps) << "threads=" << T;
  }
}

/// A program whose one bottom-up trigger is deterministic: main calls the
/// head of a long chain twice with objects from two allocation sites. The
/// first call warms the whole chain top-down (every procedure EverCalled),
/// so when the second, distinct entry state arrives at p0 with k = 1, the
/// trigger fires at a single-threaded moment with the full chain as its
/// frontier — independent of worker timing.
std::unique_ptr<Program> makeChainProgram(unsigned Procs, unsigned Reps) {
  std::string Src =
      "typestate File { start closed; error err; "
      "closed -open-> opened; opened -close-> closed; }\n"
      "proc main() { v1 = new File; p0(v1); v2 = new File; p0(v2); }\n";
  for (unsigned I = 0; I != Procs; ++I) {
    Src += "proc p" + std::to_string(I) + "(f) { ";
    for (unsigned R = 0; R != Reps; ++R)
      Src += "f.open(); f.close(); ";
    if (I + 1 != Procs)
      Src += "p" + std::to_string(I + 1) + "(f); ";
    Src += "}\n";
  }
  return parseProgram(Src);
}

TEST(AsyncBudgetTest, WorkerStepsChargeSharedBudget) {
  std::unique_ptr<Program> Prog = makeChainProgram(30, 20);
  TsContext Ctx(*Prog, Prog->symbols().intern("File"));

  TsRunResult R =
      runTypestateSwift(Ctx, 1, 2, RunLimits{}, /*AsyncBu=*/true);
  ASSERT_FALSE(R.Timeout);
  uint64_t Visits = R.Stat.get("bu.node_visits");
  ASSERT_GT(Visits, 0u) << "no bottom-up run was triggered";

  // Every bottom-up node visit charges Budget::step() on the *shared*
  // budget, so the recorded step count must cover the workers' visits.
  // The old code gave each worker a private Budget, leaving these visits
  // out of the recorded count entirely.
  EXPECT_GE(R.Steps, Visits);

  // Teeth check: the hybrid's top-down portion can only be *cheaper* than
  // a complete conventional top-down run (serving calls from summaries
  // removes work, never adds it), so under the old accounting — which
  // recorded top-down steps only — R.Steps could never exceed Td.Steps.
  // With the shared budget the worker's (larger) bottom-up spend is on
  // the record and pushes well past it.
  TsRunResult Td = runTypestateTd(Ctx);
  ASSERT_FALSE(Td.Timeout);
  EXPECT_GT(R.Steps, Td.Steps);
}

TEST(AsyncBudgetTest, WorkerCannotOutspendSharedCap) {
  std::unique_ptr<Program> Prog = makeChainProgram(30, 20);
  TsContext Ctx(*Prog, Prog->symbols().intern("File"));

  TsRunResult Td = runTypestateTd(Ctx);
  ASSERT_FALSE(Td.Timeout);
  TsRunResult Full =
      runTypestateSwift(Ctx, 1, 2, RunLimits{}, /*AsyncBu=*/true);
  ASSERT_FALSE(Full.Timeout);
  uint64_t Visits = Full.Stat.get("bu.node_visits");
  ASSERT_GT(Visits, 0u);

  // A cap the complete top-down pass fits under but the triggered
  // bottom-up run pushes past (its visits alone exceed Cap - Td.Steps).
  // With the one shared budget the run must drain the budget to the cap
  // and stop there. The old code handed the worker a *fresh* budget with
  // the same caps, so the recorded count stayed at the top-down cost —
  // below the cap — while the process actually spent far beyond it.
  uint64_t Cap = Td.Steps + Visits / 2;
  ASSERT_GT(Full.Steps, Cap) << "chain program no longer BU-heavy enough";
  RunLimits L;
  L.MaxSteps = Cap;
  TsRunResult R = runTypestateSwift(Ctx, 1, 2, L, /*AsyncBu=*/true);
  EXPECT_GE(R.Steps, Cap); // the combined spend hit the shared cap
  EXPECT_LE(R.Steps, Cap + 64);
  // Timeout is deliberately not asserted: if the top-down fixpoint
  // drains before the worker exhausts the budget, the result is complete
  // and the run legitimately reports success — the discarded bottom-up
  // summary was an optimization, not a correctness input.
}

TEST(AsyncBudgetTest, ExhaustionRespectsSharedCap) {
  GenConfig GC;
  GC.Seed = 9;
  GC.Layers = 4;
  GC.ProcsPerLayer = 5;
  GC.NumDrivers = 4;
  GC.ObjectsPerDriver = 3;
  std::unique_ptr<Program> Prog = generateWorkload(GC);
  TsContext Ctx(*Prog, Prog->symbols().intern("File"));

  RunLimits L;
  L.MaxSteps = 2'000;
  TsRunResult R = runTypestateSwift(Ctx, 0, 2, L, /*AsyncBu=*/true);
  EXPECT_TRUE(R.Timeout);
  // The atomic budget may overshoot by at most one step per racing
  // thread; 64 is a generous bound for any worker count.
  EXPECT_LE(R.Steps, L.MaxSteps + 64);
}

} // namespace
