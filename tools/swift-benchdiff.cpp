//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Compares two "swift-bench" v1 result files (obs/BenchResult.h) and
/// exits non-zero on a perf regression — the gate behind the CI perf-gate
/// job and the local perf-trajectory workflow (MANUAL section 10).
///
/// Exit codes: 0 = no regression (improvements and within-noise deltas
/// included), 1 = at least one regression, 2 = usage / IO / schema
/// error, 4 = rows present only in the baseline (the bench set shrank —
/// a removed or renamed workload must not read as a pass; a run that
/// deliberately covers a subset passes --allow-missing-rows).
///
/// The CI gate runs with --metric=steps: budget-step counts are
/// deterministic for a fixed solver, so the comparison is independent of
/// runner-machine speed. Wall-time comparisons (--metric=time or the
/// default all-metrics mode) are for same-machine trajectory checks and
/// use the relative noise threshold plus an absolute seconds floor.
///
//===----------------------------------------------------------------------===//

#include "obs/BenchResult.h"
#include "support/AtomicFile.h"
#include "support/CliParse.h"

#include <cstdio>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

using namespace swift;
using namespace swift::obs;

namespace {

int usage(const char *Argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--threshold=FRACTION] [--min-seconds=S] [--min-count=N] "
      "[--metric=all|time|steps] [--allow-missing-rows] "
      "BASELINE.json NEW.json\n"
      "  --threshold=F    relative regression threshold (default 0.25)\n"
      "  --min-seconds=S  ignore time deltas under S seconds (default "
      "0.05)\n"
      "  --min-count=N    ignore count deltas under N (default 8)\n"
      "  --metric=M       compare all metrics, time-like only, or "
      "steps only\n"
      "  --allow-missing-rows\n"
      "                   accept baseline rows absent from NEW (exit 4 "
      "otherwise)\n",
      Argv0);
  return 2;
}

bool loadReport(const char *Argv0, const std::string &Path,
                benchjson::Report &R) {
  std::string Text, Err;
  try {
    Text = readWholeFile(Path);
  } catch (const std::runtime_error &E) {
    std::fprintf(stderr, "%s: %s\n", Argv0, E.what());
    return false;
  }
  if (!benchjson::parseReport(Text, R, &Err)) {
    std::fprintf(stderr, "%s: %s: %s\n", Argv0, Path.c_str(), Err.c_str());
    return false;
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  benchjson::DiffOptions O;
  std::vector<std::string> Paths;
  for (int I = 1; I < Argc; ++I) {
    std::string_view A = Argv[I];
    std::string_view V;
    if (cli::matchValueFlag(A, "--threshold=", V)) {
      if (!cli::parseNonNegDouble(V, O.Threshold)) {
        std::fprintf(stderr, "%s: invalid --threshold value '%.*s'\n",
                     Argv[0], int(V.size()), V.data());
        return 2;
      }
    } else if (cli::matchValueFlag(A, "--min-seconds=", V)) {
      if (!cli::parseNonNegDouble(V, O.MinSeconds)) {
        std::fprintf(stderr, "%s: invalid --min-seconds value '%.*s'\n",
                     Argv[0], int(V.size()), V.data());
        return 2;
      }
    } else if (cli::matchValueFlag(A, "--min-count=", V)) {
      if (!cli::parseNonNegDouble(V, O.MinCount)) {
        std::fprintf(stderr, "%s: invalid --min-count value '%.*s'\n",
                     Argv[0], int(V.size()), V.data());
        return 2;
      }
    } else if (cli::matchValueFlag(A, "--metric=", V)) {
      if (V == "all")
        O.Metric = benchjson::DiffOptions::Filter::All;
      else if (V == "time")
        O.Metric = benchjson::DiffOptions::Filter::TimeOnly;
      else if (V == "steps")
        O.Metric = benchjson::DiffOptions::Filter::StepsOnly;
      else {
        std::fprintf(stderr,
                     "%s: invalid --metric value '%.*s' (want all, time, "
                     "or steps)\n",
                     Argv[0], int(V.size()), V.data());
        return 2;
      }
    } else if (A == "--allow-missing-rows") {
      O.AllowMissingRows = true;
    } else if (A == "--help") {
      usage(Argv[0]);
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "%s: unknown flag '%s'\n", Argv[0], Argv[I]);
      return 2;
    } else {
      Paths.emplace_back(A);
    }
  }
  if (Paths.size() != 2)
    return usage(Argv[0]);

  benchjson::Report Base, New;
  if (!loadReport(Argv[0], Paths[0], Base) ||
      !loadReport(Argv[0], Paths[1], New))
    return 2;

  benchjson::DiffResult D = benchjson::diffReports(Base, New, O);
  std::fputs(benchjson::formatDiff(D, O).c_str(), stdout);
  if (D.hasRegression())
    return 1;
  if (D.hasMissingRows() && !O.AllowMissingRows)
    return 4;
  return 0;
}
