//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// swift-difftest — differential-testing driver. Fuzzes programs, runs the
/// concrete interpreter as ground truth plus the whole analysis-mode
/// matrix (TD / pure BU / SWIFT sync and async at several (k, theta),
/// thread counts, manifest on/off), checks soundness and the paper's
/// coincidence guarantees, and on a mismatch delta-debugs the program to a
/// small reproducer.
///
/// Exit code: 0 all seeds clean, 1 violations found, 2 usage error,
/// 3 clean but resource-exhausted (some reference runs hit their budget,
/// so their coincidence / partial-soundness / checkpoint checks were
/// skipped rather than failed — rerun with a larger --steps/--run-seconds
/// for full coverage).
///
//===----------------------------------------------------------------------===//

#include "clients/TestHooks.h"
#include "difftest/Difftest.h"
#include "difftest/DomainOracle.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/CliParse.h"
#include "support/FailPoint.h"
#include "typestate/Transfer.h"

#include <cstdio>
#include <iostream>
#include <string>
#include <string_view>

using namespace swift;
using namespace swift::difftest;

namespace {

struct ToolOptions {
  std::string Domain = "typestate";
  uint64_t Seeds = 50;
  uint64_t FirstSeed = 1;
  unsigned Schedules = 8;
  uint64_t Steps = 2'000'000;   ///< Per-analysis-run step budget.
  double RunSeconds = 10.0;     ///< Per-analysis-run wall budget.
  double BudgetSeconds = 1e18;  ///< Whole-campaign wall budget.
  std::string OutDir = "results/repros";
  std::string ReplayPath;
  std::string TraceOut;
  std::string MetricsOut;
  bool InjectBug = false;
  bool NoReduce = false;
  bool ShowHelp = false;
};

std::string domainValueList() {
  std::string S = "typestate";
  for (const std::string &N : clients::clientDomainNames())
    S += ", " + N;
  return S;
}

const char *usageText() {
  return "usage: swift-difftest [options]\n"
         "  --domain=NAME    oracle to run: typestate (default, the full\n"
         "                   matrix of docs/MANUAL.md section 7) or a\n"
         "                   client domain — taint, nullderef, reachdefs,\n"
         "                   interval (section 14)\n"
         "  --seeds=N        fuzz seeds to test (default 50)\n"
         "  --first-seed=N   first seed (default 1)\n"
         "  --schedules=N    concrete schedules per seed (default 8)\n"
         "  --steps=N        step budget per analysis run (default 2000000)\n"
         "  --run-seconds=S  wall budget per analysis run (default 10)\n"
         "  --budget=S       wall budget for the whole campaign\n"
         "  --out-dir=DIR    reproducer directory (default results/repros;\n"
         "                   empty disables writing)\n"
         "  --replay=FILE    replay one swift-ir reproducer instead of\n"
         "                   fuzzing\n"
         "  --inject-bug     enable the test-only transfer-function fault\n"
         "                   (proves the oracle catches divergences)\n"
         "  --no-reduce      skip delta-debugging of violations\n"
         "  --trace-out=F    write a Chrome/Perfetto trace of the whole\n"
         "                   campaign/replay to F (MANUAL section 9)\n"
         "  --metrics-out=F  write a swift-metrics JSON snapshot to F\n"
         "  --help           this text\n";
}

bool parseArgs(int Argc, char **Argv, ToolOptions &O, std::string &Err) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view A = Argv[I];
    std::string_view V;
    if (cli::matchValueFlag(A, "--domain=", V)) {
      if (V != "typestate" && !clients::isClientDomain(std::string(V))) {
        Err = "invalid --domain value '" + std::string(V) +
              "' (valid values: " + domainValueList() + ")";
        return false;
      }
      O.Domain = V;
    } else if (cli::matchValueFlag(A, "--seeds=", V)) {
      if (!cli::parseU64(V, O.Seeds) || O.Seeds == 0) {
        Err = "invalid --seeds value '" + std::string(V) + "'";
        return false;
      }
    } else if (cli::matchValueFlag(A, "--first-seed=", V)) {
      if (!cli::parseU64(V, O.FirstSeed)) {
        Err = "invalid --first-seed value '" + std::string(V) + "'";
        return false;
      }
    } else if (cli::matchValueFlag(A, "--schedules=", V)) {
      if (!cli::parseUnsigned(V, O.Schedules, 1, 10'000)) {
        Err = "invalid --schedules value '" + std::string(V) +
              "' (want an integer in [1, 10000])";
        return false;
      }
    } else if (cli::matchValueFlag(A, "--steps=", V)) {
      if (!cli::parseU64(V, O.Steps) || O.Steps == 0) {
        Err = "invalid --steps value '" + std::string(V) + "'";
        return false;
      }
    } else if (cli::matchValueFlag(A, "--run-seconds=", V)) {
      if (!cli::parseNonNegDouble(V, O.RunSeconds)) {
        Err = "invalid --run-seconds value '" + std::string(V) + "'";
        return false;
      }
    } else if (cli::matchValueFlag(A, "--budget=", V)) {
      if (!cli::parseNonNegDouble(V, O.BudgetSeconds)) {
        Err = "invalid --budget value '" + std::string(V) + "'";
        return false;
      }
    } else if (cli::matchValueFlag(A, "--out-dir=", V)) {
      O.OutDir = V;
    } else if (cli::matchValueFlag(A, "--replay=", V)) {
      if (V.empty()) {
        Err = "--replay needs a file path";
        return false;
      }
      O.ReplayPath = V;
    } else if (cli::matchValueFlag(A, "--trace-out=", V)) {
      if (V.empty()) {
        Err = "--trace-out needs a file path";
        return false;
      }
      O.TraceOut = V;
    } else if (cli::matchValueFlag(A, "--metrics-out=", V)) {
      if (V.empty()) {
        Err = "--metrics-out needs a file path";
        return false;
      }
      O.MetricsOut = V;
    } else if (A == "--inject-bug") {
      O.InjectBug = true;
    } else if (A == "--no-reduce") {
      O.NoReduce = true;
    } else if (A == "--help") {
      O.ShowHelp = true;
    } else {
      Err = "unknown flag '" + std::string(A) + "'";
      return false;
    }
  }
  return true;
}

OracleOptions oracleOptions(const ToolOptions &O) {
  OracleOptions OO;
  OO.Limits.MaxSteps = O.Steps;
  OO.Limits.MaxSeconds = O.RunSeconds;
  OO.Schedules = O.Schedules;
  return OO;
}

DomainOracleOptions domainOracleOptions(const ToolOptions &O) {
  DomainOracleOptions OO;
  OO.Limits.MaxSteps = O.Steps;
  OO.Limits.MaxSeconds = O.RunSeconds;
  OO.Schedules = O.Schedules;
  return OO;
}

int domainReplay(const ToolOptions &O) {
  DomainOracleResult R;
  try {
    R = replayDomainFile(O.ReplayPath, O.Domain, domainOracleOptions(O));
  } catch (const std::exception &E) {
    std::fprintf(stderr, "swift-difftest: %s\n", E.what());
    return 2;
  }
  std::printf("replayed %s under %s: %u run(s), %u timed out, %zu "
              "violation(s)\n",
              O.ReplayPath.c_str(), O.Domain.c_str(), R.RunsDone,
              R.RunsTimedOut, R.Violations.size());
  for (const Violation &V : R.Violations)
    std::printf("  [%s] %s: %s\n", checkKindName(V.Kind), V.Config.c_str(),
                V.Detail.c_str());
  if (!R.clean())
    return 1;
  if (R.ReferenceTimedOut) {
    std::printf("note: the td reference run exhausted its budget; "
                "every check was skipped\n");
    return 3;
  }
  return 0;
}

int domainCampaign(const ToolOptions &O) {
  DomainCampaignOptions CO;
  CO.Domain = O.Domain;
  CO.FirstSeed = O.FirstSeed;
  CO.NumSeeds = O.Seeds;
  CO.Oracle = domainOracleOptions(O);
  CO.ReduceViolations = !O.NoReduce;
  CO.OutDir = O.OutDir;
  CO.BudgetSeconds = O.BudgetSeconds;

  CampaignResult R = runDomainCampaign(CO, std::cout);
  std::printf("[%s] %llu seed(s) tested, %zu with violations, %llu "
              "resource-exhausted%s\n",
              O.Domain.c_str(),
              static_cast<unsigned long long>(R.SeedsRun),
              R.BadSeeds.size(),
              static_cast<unsigned long long>(R.ExhaustedSeeds),
              R.StoppedOnBudget ? " (stopped on --budget)" : "");
  if (!R.clean())
    return 1;
  return R.ExhaustedSeeds != 0 ? 3 : 0;
}

int replay(const ToolOptions &O) {
  OracleResult R;
  try {
    R = replayFile(O.ReplayPath, oracleOptions(O));
  } catch (const std::exception &E) {
    std::fprintf(stderr, "swift-difftest: %s\n", E.what());
    return 2;
  }
  std::printf("replayed %s: %u run(s), %u timed out, %zu violation(s)\n",
              O.ReplayPath.c_str(), R.RunsDone, R.RunsTimedOut,
              R.Violations.size());
  for (const Violation &V : R.Violations)
    std::printf("  [%s] %s: %s\n", checkKindName(V.Kind), V.Config.c_str(),
                V.Detail.c_str());
  if (!R.clean())
    return 1;
  if (R.ReferenceTimedOut) {
    std::printf("note: the td reference run exhausted its budget; "
                "reference-dependent checks were skipped\n");
    return 3;
  }
  return 0;
}

int campaign(const ToolOptions &O) {
  CampaignOptions CO;
  CO.FirstSeed = O.FirstSeed;
  CO.NumSeeds = O.Seeds;
  CO.Oracle = oracleOptions(O);
  CO.Reduce.Oracle = CO.Oracle;
  CO.ReduceViolations = !O.NoReduce;
  CO.OutDir = O.OutDir;
  CO.BudgetSeconds = O.BudgetSeconds;

  CampaignResult R = runCampaign(CO, std::cout);
  std::printf("%llu seed(s) tested, %zu with violations, %llu "
              "resource-exhausted%s\n",
              static_cast<unsigned long long>(R.SeedsRun),
              R.BadSeeds.size(),
              static_cast<unsigned long long>(R.ExhaustedSeeds),
              R.StoppedOnBudget ? " (stopped on --budget)" : "");
  if (!R.clean())
    return 1;
  return R.ExhaustedSeeds != 0 ? 3 : 0;
}

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions O;
  std::string Err;
  if (!parseArgs(Argc, Argv, O, Err)) {
    std::fprintf(stderr, "swift-difftest: %s\n%s", Err.c_str(),
                 usageText());
    return 2;
  }
  if (O.ShowHelp) {
    std::fputs(usageText(), stdout);
    return 0;
  }
  if (O.InjectBug) {
    if (O.Domain == "typestate")
      test::InjectTsCallWeakUpdateBug.store(true);
    else
      clients::test::injectDomainBug(O.Domain, true);
  }
  try {
    failpoint::armFromEnv();
  } catch (const std::exception &E) {
    std::fprintf(stderr, "swift-difftest: %s\n", E.what());
    return 2;
  }

  if (!O.TraceOut.empty())
    obs::TraceRecorder::instance().start();
  if (!O.MetricsOut.empty())
    obs::MetricsRegistry::instance().enable();

  int Rc;
  if (O.Domain == "typestate")
    Rc = O.ReplayPath.empty() ? campaign(O) : replay(O);
  else
    Rc = O.ReplayPath.empty() ? domainCampaign(O) : domainReplay(O);

  // Advisory flushes: an observability write failure warns but never
  // changes the campaign verdict.
  if (!O.TraceOut.empty()) {
    obs::TraceRecorder::instance().stop();
    std::string FlushErr;
    if (!obs::TraceRecorder::instance().flushToFile(O.TraceOut, &FlushErr))
      std::fprintf(stderr, "swift-difftest: warning: trace write failed: "
                           "%s\n",
                   FlushErr.c_str());
  }
  if (!O.MetricsOut.empty()) {
    std::string FlushErr;
    if (!obs::MetricsRegistry::instance().writeSnapshot(O.MetricsOut,
                                                        nullptr, &FlushErr))
      std::fprintf(stderr, "swift-difftest: warning: metrics write "
                           "failed: %s\n",
                   FlushErr.c_str());
  }
  return Rc;
}
