#!/usr/bin/env python3
"""Validates a "swift-crashtest" v1 result file emitted by --json-out.

Schema checks (CI's crash-recovery job runs this on the fresh campaign
result before trusting the tool's exit code; see
.github/workflows/ci.yml and tools/swift-crashtest.cpp):
  * the file parses as JSON with format "swift-crashtest" and version 1;
  * "campaigns" is a non-empty array; every campaign has a non-empty
    string "name" and non-negative integer "seeds_tested",
    "seeds_skipped", "kills_landed", "child_completed", "violations";
  * campaign names are unique and the four known campaigns (checkpoint,
    serve-store, shard-workers, serve-journal) are all present;
  * every campaign reports violations == 0 — the crash-safety gate;
  * at least one campaign both tested seeds and landed kills (a run
    that provoked no crash certifies nothing).

Exit 0 with a one-line summary on success, exit 1 with a diagnostic on
the first violation.
"""

import json
import sys

REQUIRED_CAMPAIGNS = ("checkpoint", "serve-store", "shard-workers",
                      "serve-journal")
COUNTERS = ("seeds_tested", "seeds_skipped", "kills_landed",
            "child_completed", "violations")


def fail(msg):
    print(f"check_crashtest: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_crashtest.py <crashtest.json>")
    path = sys.argv[1]
    try:
        with open(path, "r", encoding="utf-8") as f:
            root = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if not isinstance(root, dict):
        fail(f"{path}: top level is not an object")
    if root.get("format") != "swift-crashtest":
        fail(f"{path}: format is not \"swift-crashtest\"")
    if root.get("version") != 1:
        fail(f"{path}: unsupported version {root.get('version')!r}")

    campaigns = root.get("campaigns")
    if not isinstance(campaigns, list) or not campaigns:
        fail(f"{path}: missing or empty campaigns array")

    seen = {}
    for i, c in enumerate(campaigns):
        where = f"{path}: campaigns[{i}]"
        if not isinstance(c, dict):
            fail(f"{where} is not an object")
        name = c.get("name")
        if not isinstance(name, str) or not name:
            fail(f"{where}: missing or empty name")
        if name in seen:
            fail(f"{where}: duplicate campaign {name!r}")
        for key in COUNTERS:
            val = c.get(key)
            if isinstance(val, bool) or not isinstance(val, int):
                fail(f"{where}: {key} is not an integer")
            if val < 0:
                fail(f"{where}: {key} is negative")
        seen[name] = c

    for name in REQUIRED_CAMPAIGNS:
        if name not in seen:
            fail(f"{path}: campaign {name!r} is missing")

    for name, c in seen.items():
        if c["violations"] != 0:
            fail(f"{path}: campaign {name!r} reports {c['violations']} "
                 f"crash-safety violation(s)")

    if not any(c["seeds_tested"] and c["kills_landed"]
               for c in seen.values()):
        fail(f"{path}: no campaign tested seeds and landed kills; the "
             f"run certifies nothing")

    tested = sum(c["seeds_tested"] for c in seen.values())
    kills = sum(c["kills_landed"] for c in seen.values())
    print(f"check_crashtest: {path}: OK ({len(seen)} campaigns, "
          f"{tested} seeds crash-tested, {kills} kills, 0 violations)")


if __name__ == "__main__":
    main()
