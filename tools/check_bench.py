#!/usr/bin/env python3
"""Validates a "swift-bench" v1 result file emitted by --json-out.

Schema checks (CI's perf-gate job runs this on fresh bench_table2 /
bench_microops results before handing them to swift-benchdiff; see
.github/workflows/ci.yml and src/obs/BenchResult.h):
  * the file parses as JSON with format "swift-bench" and version 1;
  * "bench" is a non-empty string; "context", when present, is an object
    of finite non-negative numbers;
  * "rows" is a non-empty array; every row has non-empty string
    "workload"/"config", a bool "timeout", and a non-empty "metrics"
    object of finite non-negative numbers;
  * (workload, config) row keys are unique.

Exit 0 with a one-line summary on success, exit 1 with a diagnostic on
the first violation.
"""

import json
import math
import sys


def fail(msg):
    print(f"check_bench: {msg}", file=sys.stderr)
    sys.exit(1)


def check_num_obj(obj, where, allow_empty):
    if not isinstance(obj, dict):
        fail(f"{where} is not an object")
    if not obj and not allow_empty:
        fail(f"{where} is empty")
    for key, val in obj.items():
        if isinstance(val, bool) or not isinstance(val, (int, float)):
            fail(f"{where}.{key} is not a number")
        if not math.isfinite(val) or val < 0:
            fail(f"{where}.{key} is negative or non-finite")


def main():
    if len(sys.argv) != 2:
        fail("usage: check_bench.py <bench.json>")
    path = sys.argv[1]
    try:
        with open(path, "r", encoding="utf-8") as f:
            root = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if not isinstance(root, dict):
        fail(f"{path}: top level is not an object")
    if root.get("format") != "swift-bench":
        fail(f"{path}: format is not \"swift-bench\"")
    if root.get("version") != 1:
        fail(f"{path}: unsupported version {root.get('version')!r}")
    bench = root.get("bench")
    if not isinstance(bench, str) or not bench:
        fail(f"{path}: missing or empty bench name")
    if "context" in root:
        check_num_obj(root["context"], f"{path}: context", allow_empty=True)

    rows = root.get("rows")
    if not isinstance(rows, list) or not rows:
        fail(f"{path}: missing or empty rows array")

    seen = set()
    for i, row in enumerate(rows):
        where = f"{path}: rows[{i}]"
        if not isinstance(row, dict):
            fail(f"{where} is not an object")
        for key in ("workload", "config"):
            if not isinstance(row.get(key), str) or not row[key]:
                fail(f"{where}: missing or empty {key}")
        if not isinstance(row.get("timeout"), bool):
            fail(f"{where}: missing or non-bool timeout")
        check_num_obj(row.get("metrics"), f"{where}.metrics",
                      allow_empty=False)
        row_key = (row["workload"], row["config"])
        if row_key in seen:
            fail(f"{where}: duplicate row key {row_key!r}")
        seen.add(row_key)

    timeouts = sum(1 for r in rows if r["timeout"])
    print(f"check_bench: {path}: OK ({bench}; {len(rows)} rows, "
          f"{timeouts} timeout)")


if __name__ == "__main__":
    main()
