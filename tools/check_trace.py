#!/usr/bin/env python3
"""Validates a Chrome trace_event JSON file emitted by --trace-out.

Schema checks (CI runs this on swift-analyze traces of fuzz-seed
programs; see .github/workflows/ci.yml):
  * the file parses as JSON and has a non-empty "traceEvents" array;
  * every event has a string "name", a known "ph" (X/i/C/M), and integer
    "pid"/"tid";
  * non-metadata events carry a non-negative numeric "ts"; "X" events
    additionally carry a non-negative "dur";
  * "args", when present, is an object;
  * the trace contains at least one duration span and one counter sample
    (a governed swift-analyze run always produces both: the td.run span
    and the gov.pressure timeline).

Exit 0 with a one-line summary on success, exit 1 with a diagnostic on
the first violation.
"""

import json
import sys

KNOWN_PHASES = {"X", "i", "C", "M"}


def fail(msg):
    print(f"check_trace: {msg}", file=sys.stderr)
    sys.exit(1)


def main():
    if len(sys.argv) != 2:
        fail("usage: check_trace.py <trace.json>")
    path = sys.argv[1]
    try:
        with open(path, "r", encoding="utf-8") as f:
            root = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")

    if not isinstance(root, dict):
        fail(f"{path}: top level is not an object")
    events = root.get("traceEvents")
    if not isinstance(events, list) or not events:
        fail(f"{path}: missing or empty traceEvents array")

    phase_counts = {}
    for i, ev in enumerate(events):
        where = f"{path}: traceEvents[{i}]"
        if not isinstance(ev, dict):
            fail(f"{where}: not an object")
        name = ev.get("name")
        if not isinstance(name, str) or not name:
            fail(f"{where}: missing or non-string name")
        ph = ev.get("ph")
        if ph not in KNOWN_PHASES:
            fail(f"{where} ({name}): unknown phase {ph!r}")
        phase_counts[ph] = phase_counts.get(ph, 0) + 1
        for key in ("pid", "tid"):
            if not isinstance(ev.get(key), int):
                fail(f"{where} ({name}): missing or non-integer {key}")
        if ph != "M":
            ts = ev.get("ts")
            if not isinstance(ts, (int, float)) or ts < 0:
                fail(f"{where} ({name}): bad ts {ts!r}")
        if ph == "X":
            dur = ev.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                fail(f"{where} ({name}): bad dur {dur!r}")
        if "args" in ev and not isinstance(ev["args"], dict):
            fail(f"{where} ({name}): args is not an object")

    if phase_counts.get("X", 0) == 0:
        fail(f"{path}: no duration spans — instrumentation missing?")
    if phase_counts.get("C", 0) == 0:
        fail(f"{path}: no counter samples — instrumentation missing?")

    total = len(events)
    summary = ", ".join(f"{k}:{v}" for k, v in sorted(phase_counts.items()))
    print(f"check_trace: {path}: OK ({total} events; {summary})")


if __name__ == "__main__":
    main()
