//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// swift-serve — resident incremental summary server. Loads one swift-ir
/// program (or a warm-start store written by a previous run), brings the
/// bottom-up relational summary set to completeness, then answers
/// line-delimited JSON requests on stdin: per-site verdict queries and
/// procedure-replacement edits that re-analyze only the summaries the
/// edit invalidates (docs/MANUAL.md section 11 documents the protocol).
///
/// stdout carries exactly one JSON response per request; all human-facing
/// chatter goes to stderr so scripted sessions can diff responses
/// directly.
///
/// Durability: with --journal every accepted edit is fsync'd to the
/// write-ahead log before its success response; a warm start (--store)
/// replays the journal tail on top of the verified store, so a crash
/// loses nothing a client was ever told succeeded. SIGTERM/SIGINT drain
/// gracefully: the in-flight request finishes, one final
/// {"ok":true,"drain":true,...} stats line is emitted, trace/metrics are
/// flushed, and the process exits 0.
///
/// Exit code: 0 clean shutdown (EOF, shutdown request, or drain signal),
/// 2 usage/input error, 3 the initial solve exhausted the per-request
/// step budget or journal replay failed on a budget (the server does not
/// start; raise --max-steps).
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "serve/Engine.h"
#include "serve/Server.h"
#include "support/CliParse.h"
#include "support/FailPoint.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>

#include <unistd.h>

using namespace swift;

namespace {

struct ToolOptions {
  std::string InputPath;  ///< swift-ir program (cold start).
  std::string StoreIn;    ///< warm-start store (--store=).
  std::string Tracked;    ///< --tracked= class; empty = first spec.
  std::string StoreOut;   ///< --store-out= auto-save path.
  std::string JournalPath; ///< --journal= write-ahead log path.
  uint64_t MaxSteps = 200'000'000;
  uint64_t RequestDeadlineMs = 0; ///< --request-deadline-ms= default.
  uint64_t ShedCooldownMs = 0;    ///< --shed-cooldown-ms= gate latch.
  uint64_t MaxPendingBytes = 0;   ///< --max-pending-bytes= gate bound.
  std::string FailPoints;
  std::string TraceOut;
  std::string MetricsOut;
  bool ShowHelp = false;
};

const char *usageText() {
  return "usage: swift-serve [options] <program.swiftir>\n"
         "       swift-serve [options] --store=F\n"
         "  --store=F           warm-start from store F (the program\n"
         "                      comes from the store; the positional\n"
         "                      input is not allowed)\n"
         "  --tracked=CLASS     typestate class to analyze (default:\n"
         "                      the program's first spec)\n"
         "  --store-out=F       auto-save the store to F after the\n"
         "                      initial solve and every successful edit\n"
         "                      (with --journal: only the initial solve\n"
         "                      and save/compaction rewrite the store)\n"
         "  --journal=F         crash-durable write-ahead edit journal:\n"
         "                      every accepted edit is fsync'd to F\n"
         "                      before its response; a warm start\n"
         "                      replays F's tail, a cold start resets F\n"
         "                      to the new baseline; requires\n"
         "                      --store-out (the compaction target)\n"
         "  --request-deadline-ms=N  default wall-clock deadline per\n"
         "                      edit request; an overrun returns a sound\n"
         "                      degraded response (0 = none; a request's\n"
         "                      own deadline_ms field overrides)\n"
         "  --shed-cooldown-ms=N  after a budget-exhausted edit, shed\n"
         "                      edit requests with code \"retry\" for N\n"
         "                      ms (0 = never shed)\n"
         "  --max-pending-bytes=N  shed edit requests while more than N\n"
         "                      bytes are queued on stdin (0 = no bound)\n"
         "  --max-steps=N       per-request solver step budget (default\n"
         "                      200000000)\n"
         "  --failpoints=SPEC   arm fault-injection failpoints (also\n"
         "                      armed from SWIFT_FAILPOINTS)\n"
         "  --trace-out=F       write a Chrome/Perfetto trace on exit\n"
         "  --metrics-out=F     write a swift-metrics snapshot on exit\n"
         "  --help              this text\n"
         "signals: SIGTERM/SIGINT drain gracefully (finish the in-flight\n"
         "      request, emit a final drain stats line, flush, exit 0)\n"
         "exit: 0 clean shutdown or drain, 2 usage/input error, 3 initial\n"
         "      solve or journal replay exhausted the step budget\n";
}

bool parseArgs(int Argc, char **Argv, ToolOptions &O, std::string &Err) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view A = Argv[I];
    std::string_view V;
    if (cli::matchValueFlag(A, "--store=", V)) {
      if (V.empty()) {
        Err = "--store needs a file path";
        return false;
      }
      O.StoreIn = V;
    } else if (cli::matchValueFlag(A, "--tracked=", V)) {
      if (V.empty()) {
        Err = "--tracked needs a class name";
        return false;
      }
      O.Tracked = V;
    } else if (cli::matchValueFlag(A, "--store-out=", V)) {
      if (V.empty()) {
        Err = "--store-out needs a file path";
        return false;
      }
      O.StoreOut = V;
    } else if (cli::matchValueFlag(A, "--journal=", V)) {
      if (V.empty()) {
        Err = "--journal needs a file path";
        return false;
      }
      O.JournalPath = V;
    } else if (cli::matchValueFlag(A, "--request-deadline-ms=", V)) {
      if (!cli::parseU64(V, O.RequestDeadlineMs)) {
        Err = "invalid --request-deadline-ms value '" + std::string(V) + "'";
        return false;
      }
    } else if (cli::matchValueFlag(A, "--shed-cooldown-ms=", V)) {
      if (!cli::parseU64(V, O.ShedCooldownMs)) {
        Err = "invalid --shed-cooldown-ms value '" + std::string(V) + "'";
        return false;
      }
    } else if (cli::matchValueFlag(A, "--max-pending-bytes=", V)) {
      if (!cli::parseU64(V, O.MaxPendingBytes)) {
        Err = "invalid --max-pending-bytes value '" + std::string(V) + "'";
        return false;
      }
    } else if (cli::matchValueFlag(A, "--max-steps=", V)) {
      if (!cli::parseU64(V, O.MaxSteps) || O.MaxSteps == 0) {
        Err = "invalid --max-steps value '" + std::string(V) + "'";
        return false;
      }
    } else if (cli::matchValueFlag(A, "--failpoints=", V)) {
      if (V.empty()) {
        Err = "--failpoints needs a spec";
        return false;
      }
      O.FailPoints = V;
    } else if (cli::matchValueFlag(A, "--trace-out=", V)) {
      if (V.empty()) {
        Err = "--trace-out needs a file path";
        return false;
      }
      O.TraceOut = V;
    } else if (cli::matchValueFlag(A, "--metrics-out=", V)) {
      if (V.empty()) {
        Err = "--metrics-out needs a file path";
        return false;
      }
      O.MetricsOut = V;
    } else if (A == "--help") {
      O.ShowHelp = true;
    } else if (!A.empty() && A[0] == '-') {
      Err = "unknown flag '" + std::string(A) + "'";
      return false;
    } else if (O.InputPath.empty()) {
      O.InputPath = A;
    } else {
      Err = "more than one input file";
      return false;
    }
  }
  if (O.StoreIn.empty() && O.InputPath.empty()) {
    Err = "no input program or store";
    return false;
  }
  if (!O.StoreIn.empty() && !O.InputPath.empty()) {
    Err = "--store carries its own program; drop the input file";
    return false;
  }
  if (!O.JournalPath.empty() && O.StoreOut.empty()) {
    Err = "--journal needs --store-out: compaction folds the log into "
          "that store";
    return false;
  }
  return true;
}

//===----------------------------------------------------------------------===//
// Graceful drain
//===----------------------------------------------------------------------===//

/// Set by the signal handler, observed by the request loop after the
/// in-flight request completes.
std::atomic<bool> GDrain{false};

/// Async-signal-safe SIGTERM/SIGINT handler (the swift-analyze pattern:
/// flag + syscall, nothing else). Closing stdin deterministically
/// unblocks the request loop's blocking read; the loop then sees the
/// flag, finishes cleanly, and main flushes and exits 0. No journal work
/// is needed here — every accepted edit was already fsync'd.
extern "C" void onDrainSignal(int) {
  GDrain.store(true);
  ::close(0);
}

void installDrainHandlers() {
  struct sigaction SA;
  std::memset(&SA, 0, sizeof(SA));
  SA.sa_handler = onDrainSignal;
  sigemptyset(&SA.sa_mask);
  SA.sa_flags = 0; // no SA_RESTART: the blocked read must return
  ::sigaction(SIGTERM, &SA, nullptr);
  ::sigaction(SIGINT, &SA, nullptr);
}

void flushObservability(const ToolOptions &O) {
  if (!O.TraceOut.empty()) {
    obs::TraceRecorder::instance().stop();
    std::string Err;
    if (!obs::TraceRecorder::instance().flushToFile(O.TraceOut, &Err))
      std::fprintf(stderr,
                   "swift-serve: warning: trace write failed: %s\n",
                   Err.c_str());
  }
  if (!O.MetricsOut.empty()) {
    std::string Err;
    if (!obs::MetricsRegistry::instance().writeSnapshot(O.MetricsOut,
                                                        nullptr, &Err))
      std::fprintf(stderr,
                   "swift-serve: warning: metrics write failed: %s\n",
                   Err.c_str());
  }
}

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions O;
  std::string Err;
  if (!parseArgs(Argc, Argv, O, Err)) {
    std::fprintf(stderr, "swift-serve: %s\n%s", Err.c_str(), usageText());
    return 2;
  }
  if (O.ShowHelp) {
    std::fputs(usageText(), stdout);
    return 0;
  }

  try {
    failpoint::armFromEnv();
    if (!O.FailPoints.empty())
      failpoint::armSpec(O.FailPoints);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "swift-serve: %s\n%s", E.what(), usageText());
    return 2;
  }

  if (!O.TraceOut.empty())
    obs::TraceRecorder::instance().start();
  if (!O.MetricsOut.empty())
    obs::MetricsRegistry::instance().enable();

  serve::EngineOptions EO;
  EO.TrackedClass = O.Tracked;
  EO.MaxStepsPerRequest = O.MaxSteps;
  EO.StorePath = O.StoreOut;
  EO.JournalPath = O.JournalPath;
  EO.RequestDeadlineMs = O.RequestDeadlineMs;

  std::unique_ptr<serve::ServeEngine> Engine;
  try {
    if (!O.StoreIn.empty()) {
      Engine = std::make_unique<serve::ServeEngine>(
          serve::ServeEngine::FromStore{O.StoreIn}, EO);
    } else {
      std::ifstream IS(O.InputPath);
      if (!IS) {
        std::fprintf(stderr, "swift-serve: cannot open '%s'\n",
                     O.InputPath.c_str());
        return 2;
      }
      std::ostringstream Buf;
      Buf << IS.rdbuf();
      Engine = std::make_unique<serve::ServeEngine>(Buf.str(), EO);
    }
  } catch (const std::exception &E) {
    std::fprintf(stderr, "swift-serve: %s\n", E.what());
    return 2;
  }

  serve::EditResult Init = Engine->solveInitial();
  if (!Init.Ok) {
    std::fprintf(stderr, "swift-serve: initial solve failed: %s\n",
                 Init.Error.c_str());
    flushObservability(O);
    return Init.BudgetExhausted ? 3 : 2;
  }
  if (!Init.Warning.empty())
    std::fprintf(stderr, "swift-serve: warning: %s\n",
                 Init.Warning.c_str());

  size_t Replayed = 0;
  if (!O.JournalPath.empty()) {
    if (O.StoreIn.empty()) {
      // Cold start: the input program is the new baseline; whatever a
      // previous run left in the journal belongs to a different baseline
      // and must not be replayed into this one.
      try {
        Engine->resetJournal();
      } catch (const std::exception &E) {
        std::fprintf(stderr, "swift-serve: journal reset failed: %s\n",
                     E.what());
        flushObservability(O);
        return 2;
      }
    } else {
      // Warm start: store + journal tail = every edit ever acknowledged.
      try {
        serve::EditResult RR = Engine->replayJournal(&Replayed);
        if (!RR.Ok) {
          std::fprintf(stderr, "swift-serve: journal replay failed: %s\n",
                       RR.Error.c_str());
          flushObservability(O);
          return RR.BudgetExhausted ? 3 : 2;
        }
      } catch (const std::exception &E) {
        std::fprintf(stderr, "swift-serve: journal replay failed: %s\n",
                     E.what());
        flushObservability(O);
        return 2;
      }
    }
  }

  std::fprintf(stderr,
               "swift-serve: %s ready: %zu procs, %zu summaries (%zu "
               "reused), %zu error sites, %zu journal edits replayed\n",
               Engine->trackedClass().c_str(), Engine->numProcs(),
               Engine->numSummaries(), Init.Reused,
               Engine->errorSites().size(), Replayed);

  installDrainHandlers();
  serve::ServeLimits SL;
  SL.ShedCooldownMs = O.ShedCooldownMs;
  SL.MaxPendingBytes = O.MaxPendingBytes;
  SL.Drain = &GDrain;
  int Rc = serve::serveLines(*Engine, std::cin, std::cout, SL);
  if (GDrain.load())
    std::fprintf(stderr, "swift-serve: drained on signal\n");
  flushObservability(O);
  return Rc == 0 ? 0 : 2;
}
