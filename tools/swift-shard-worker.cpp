//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// swift-shard-worker — one shard of a sharded pure-bottom-up analysis.
/// Launched by swift-shardrun (one process per ready shard, restarted on
/// crash), but runnable by hand for debugging: it recomputes any missing
/// cross-shard summaries itself, so a lone worker on an empty spool is
/// simply a slow way to run its shard.
///
/// Exit codes: 0 complete, 1 restartable fault, 2 usage/input error,
/// 3 budget exhausted (deterministic — do not restart), 85 killed by an
/// armed '!kill' failpoint.
///
//===----------------------------------------------------------------------===//

#include "shard/Worker.h"
#include "support/CliParse.h"
#include "support/FailPoint.h"

#include <cstdio>
#include <string>
#include <string_view>

using namespace swift;

namespace {

const char *usageText() {
  return "usage: swift-shard-worker [options] --program=F --spool-dir=D\n"
         "  --program=F         swift-ir program text (required)\n"
         "  --class=NAME        tracked typestate class (default: first "
         "spec)\n"
         "  --shard=N           shard index to run (default 0)\n"
         "  --shards=K          total shard count (default 1)\n"
         "  --spool-dir=D       summary spool directory (required)\n"
         "  --max-steps=N       solver step budget (default unlimited)\n"
         "  --incarnation=N     restart incarnation, for heartbeat/trace\n"
         "                      labelling (default 0)\n"
         "  --degraded-shards=L comma-separated shard indices to treat as\n"
         "                      permanently failed (disables publishing)\n"
         "  --failpoints=SPEC   arm fault-injection failpoints\n"
         "  --trace-out=F       write a Chrome/Perfetto trace to F\n"
         "  --help              this text\n"
         "exit: 0 complete, 1 restartable fault, 2 usage, 3 budget "
         "exhausted\n";
}

bool parseDegraded(std::string_view V, std::set<unsigned> &Out) {
  while (!V.empty()) {
    size_t C = V.find(',');
    std::string_view Item = V.substr(0, C);
    unsigned S = 0;
    if (!cli::parseUnsigned(Item, S, 0, 1u << 20))
      return false;
    Out.insert(S);
    V = C == std::string_view::npos ? std::string_view() : V.substr(C + 1);
  }
  return true;
}

} // namespace

int main(int Argc, char **Argv) {
  shard::WorkerOptions O;
  std::string FailPoints;
  bool ShowHelp = false;
  for (int I = 1; I < Argc; ++I) {
    std::string_view A = Argv[I];
    std::string_view V;
    auto Usage = [&](const std::string &Err) {
      std::fprintf(stderr, "swift-shard-worker: %s\n%s", Err.c_str(),
                   usageText());
      return shard::WorkerExitUsage;
    };
    if (cli::matchValueFlag(A, "--program=", V)) {
      O.ProgramPath = V;
    } else if (cli::matchValueFlag(A, "--class=", V)) {
      O.TrackedClass = V;
    } else if (cli::matchValueFlag(A, "--shard=", V)) {
      if (!cli::parseUnsigned(V, O.Shard, 0, 1u << 20))
        return Usage("invalid --shard value '" + std::string(V) + "'");
    } else if (cli::matchValueFlag(A, "--shards=", V)) {
      if (!cli::parseUnsigned(V, O.NumShards, 1, 1u << 20))
        return Usage("invalid --shards value '" + std::string(V) + "'");
    } else if (cli::matchValueFlag(A, "--spool-dir=", V)) {
      O.SpoolDir = V;
    } else if (cli::matchValueFlag(A, "--max-steps=", V)) {
      if (!cli::parseU64(V, O.MaxSteps) || O.MaxSteps == 0)
        return Usage("invalid --max-steps value '" + std::string(V) + "'");
    } else if (cli::matchValueFlag(A, "--incarnation=", V)) {
      if (!cli::parseUnsigned(V, O.Incarnation, 0, 1u << 20))
        return Usage("invalid --incarnation value '" + std::string(V) +
                     "'");
    } else if (cli::matchValueFlag(A, "--degraded-shards=", V)) {
      if (!parseDegraded(V, O.DegradedShards))
        return Usage("invalid --degraded-shards value '" + std::string(V) +
                     "'");
    } else if (cli::matchValueFlag(A, "--failpoints=", V)) {
      if (V.empty())
        return Usage("--failpoints needs a spec");
      FailPoints = V;
    } else if (cli::matchValueFlag(A, "--trace-out=", V)) {
      if (V.empty())
        return Usage("--trace-out needs a file path");
      O.TraceOut = V;
    } else if (A == "--help") {
      ShowHelp = true;
    } else {
      return Usage("unknown argument '" + std::string(A) + "'");
    }
  }
  if (ShowHelp) {
    std::fputs(usageText(), stdout);
    return 0;
  }
  if (O.ProgramPath.empty() || O.SpoolDir.empty()) {
    std::fprintf(stderr,
                 "swift-shard-worker: --program and --spool-dir are "
                 "required\n%s",
                 usageText());
    return shard::WorkerExitUsage;
  }

  try {
    failpoint::armFromEnv();
    if (!FailPoints.empty())
      failpoint::armSpec(FailPoints);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "swift-shard-worker: %s\n%s", E.what(),
                 usageText());
    return shard::WorkerExitUsage;
  }

  std::string Err;
  int Code = shard::runWorker(O, &Err);
  if (Code != shard::WorkerExitOk && !Err.empty())
    std::fprintf(stderr, "swift-shard-worker: shard %u: %s\n", O.Shard,
                 Err.c_str());
  return Code;
}
