//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// swift-tracecat — merges several Chrome/Perfetto trace files (e.g. the
/// per-process traces of a sharded analysis or crashtest run) into one.
/// Thin CLI over obs/TraceMerge.h: each input keeps its events but gets a
/// distinct pid plus a process_name metadata record (the input's embedded
/// name, falling back to the source path; duplicates from restarted
/// workers get an occurrence suffix), so the viewer shows one track group
/// per process incarnation.
///
/// usage: swift-tracecat [--out=F] trace1.json trace2.json ...
///
/// Without --out the merged trace goes to stdout. Inputs are validated by
/// a full JSON parse; a malformed input is a hard error (exit 2), since a
/// silently dropped trace would misread as "that process did nothing".
///
//===----------------------------------------------------------------------===//

#include "obs/TraceMerge.h"
#include "support/AtomicFile.h"
#include "support/CliParse.h"

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

using namespace swift;
using namespace swift::obs;

namespace {

const char *usageText() {
  return "usage: swift-tracecat [--out=F] trace1.json trace2.json ...\n"
         "  --out=F   write the merged trace to F (default stdout)\n"
         "  --help    this text\n"
         "exit: 0 merged, 2 usage error or malformed input\n";
}

} // namespace

int main(int Argc, char **Argv) {
  std::string OutPath;
  std::vector<std::string> Paths;
  for (int I = 1; I < Argc; ++I) {
    std::string_view A = Argv[I];
    std::string_view V;
    if (cli::matchValueFlag(A, "--out=", V)) {
      if (V.empty()) {
        std::fprintf(stderr, "swift-tracecat: --out needs a file path\n%s",
                     usageText());
        return 2;
      }
      OutPath = V;
    } else if (A == "--help") {
      std::fputs(usageText(), stdout);
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "swift-tracecat: unknown flag '%s'\n%s",
                   std::string(A).c_str(), usageText());
      return 2;
    } else {
      Paths.emplace_back(A);
    }
  }
  if (Paths.empty()) {
    std::fprintf(stderr, "swift-tracecat: no input traces\n%s",
                 usageText());
    return 2;
  }

  std::vector<TraceInput> Inputs;
  for (const std::string &Path : Paths) {
    try {
      Inputs.push_back({Path, readWholeFile(Path)});
    } catch (const std::exception &E) {
      std::fprintf(stderr, "swift-tracecat: %s\n", E.what());
      return 2;
    }
  }

  std::string Out;
  TraceMergeStats Stats;
  try {
    Out = mergeTraces(Inputs, &Stats);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "swift-tracecat: %s\n", E.what());
    return 2;
  }

  if (OutPath.empty()) {
    std::fwrite(Out.data(), 1, Out.size(), stdout);
    return 0;
  }
  try {
    writeFileAtomic(OutPath, Out, "obs.flush");
  } catch (const std::exception &E) {
    std::fprintf(stderr, "swift-tracecat: cannot write '%s': %s\n",
                 OutPath.c_str(), E.what());
    return 2;
  }
  std::printf("merged %zu trace(s), %zu events -> %s\n", Inputs.size(),
              Stats.Events, OutPath.c_str());
  return 0;
}
