//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// swift-tracecat — merges several Chrome/Perfetto trace files (e.g. the
/// per-process traces of a multi-process crashtest run) into one. Each
/// input keeps its events but gets a distinct pid (input order, starting
/// at 1) plus a process_name metadata record naming the source file, so
/// the viewer shows one track group per process.
///
/// usage: swift-tracecat [--out=F] trace1.json trace2.json ...
///
/// Without --out the merged trace goes to stdout. Inputs are validated by
/// a full JSON parse; a malformed input is a hard error (exit 2), since a
/// silently dropped trace would misread as "that process did nothing".
///
//===----------------------------------------------------------------------===//

#include "obs/Json.h"
#include "support/AtomicFile.h"
#include "support/CliParse.h"

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

using namespace swift;
using namespace swift::obs;

namespace {

const char *usageText() {
  return "usage: swift-tracecat [--out=F] trace1.json trace2.json ...\n"
         "  --out=F   write the merged trace to F (default stdout)\n"
         "  --help    this text\n"
         "exit: 0 merged, 2 usage error or malformed input\n";
}

json::Value numberValue(uint64_t N) { return json::Value::u64(N); }

json::Value stringValue(std::string S) {
  return json::Value::str(std::move(S));
}

/// Sets (or inserts) key \p K of object \p O.
void setKey(json::Value &O, const std::string &K, json::Value V) {
  for (auto &[Key, Val] : O.Obj)
    if (Key == K) {
      Val = std::move(V);
      return;
    }
  O.Obj.emplace_back(K, std::move(V));
}

} // namespace

int main(int Argc, char **Argv) {
  std::string OutPath;
  std::vector<std::string> Inputs;
  for (int I = 1; I < Argc; ++I) {
    std::string_view A = Argv[I];
    std::string_view V;
    if (cli::matchValueFlag(A, "--out=", V)) {
      if (V.empty()) {
        std::fprintf(stderr, "swift-tracecat: --out needs a file path\n%s",
                     usageText());
        return 2;
      }
      OutPath = V;
    } else if (A == "--help") {
      std::fputs(usageText(), stdout);
      return 0;
    } else if (!A.empty() && A[0] == '-') {
      std::fprintf(stderr, "swift-tracecat: unknown flag '%s'\n%s",
                   std::string(A).c_str(), usageText());
      return 2;
    } else {
      Inputs.emplace_back(A);
    }
  }
  if (Inputs.empty()) {
    std::fprintf(stderr, "swift-tracecat: no input traces\n%s",
                 usageText());
    return 2;
  }

  json::Value Merged;
  Merged.K = json::Value::Kind::Object;
  json::Value Events;
  Events.K = json::Value::Kind::Array;

  for (size_t I = 0; I != Inputs.size(); ++I) {
    const std::string &Path = Inputs[I];
    uint64_t Pid = I + 1;
    json::Value Root;
    try {
      Root = json::parse(readWholeFile(Path));
    } catch (const std::exception &E) {
      std::fprintf(stderr, "swift-tracecat: %s: %s\n", Path.c_str(),
                   E.what());
      return 2;
    }
    const json::Value *TraceEvents = Root.find("traceEvents");
    if (!Root.isObject() || !TraceEvents || !TraceEvents->isArray()) {
      std::fprintf(stderr,
                   "swift-tracecat: %s: not a Chrome trace (no "
                   "traceEvents array)\n",
                   Path.c_str());
      return 2;
    }
    // Name the merged process track after the source file.
    json::Value Meta;
    Meta.K = json::Value::Kind::Object;
    setKey(Meta, "name", stringValue("process_name"));
    setKey(Meta, "ph", stringValue("M"));
    setKey(Meta, "pid", numberValue(Pid));
    setKey(Meta, "tid", numberValue(0));
    json::Value Args;
    Args.K = json::Value::Kind::Object;
    setKey(Args, "name", stringValue(Path));
    setKey(Meta, "args", std::move(Args));
    Events.Arr.push_back(std::move(Meta));

    for (const json::Value &E : TraceEvents->Arr) {
      if (!E.isObject())
        continue;
      const json::Value *Name = E.find("name");
      // Per-input process_name records are superseded by ours above.
      if (Name && Name->isString() && Name->Str == "process_name")
        continue;
      json::Value Copy = E;
      setKey(Copy, "pid", numberValue(Pid));
      Events.Arr.push_back(std::move(Copy));
    }
  }

  setKey(Merged, "traceEvents", std::move(Events));
  setKey(Merged, "displayTimeUnit", stringValue("ms"));
  std::string Out = json::dump(Merged);
  Out += '\n';

  if (OutPath.empty()) {
    std::fwrite(Out.data(), 1, Out.size(), stdout);
    return 0;
  }
  try {
    writeFileAtomic(OutPath, Out, "obs.flush");
  } catch (const std::exception &E) {
    std::fprintf(stderr, "swift-tracecat: cannot write '%s': %s\n",
                 OutPath.c_str(), E.what());
    return 2;
  }
  std::printf("merged %zu trace(s), %zu events -> %s\n", Inputs.size(),
              Merged.find("traceEvents")->Arr.size(), OutPath.c_str());
  return 0;
}
