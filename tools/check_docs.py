#!/usr/bin/env python3
"""Validates the repository's documentation surface.

Checks (CI runs this as the docs-check job; see .github/workflows/ci.yml):
  * every relative markdown link in README.md, docs/MANUAL.md,
    docs/ARCHITECTURE.md, and docs/DOMAINS.md resolves to a file or
    directory in the repository;
  * every `#fragment` in those links (same-file or cross-file) matches a
    GitHub-style anchor slug of a heading in the target document;
  * every backtick-quoted file path mentioned in the checked documents
    that looks repo-relative (starts with src/, docs/, tests/, tools/,
    bench/, or examples/) exists — the paper-to-file pointer table is
    the main consumer;
  * with --analyze=PATH: no drift between `swift-analyze --help` and
    MANUAL.md — every flag the binary documents is mentioned in the
    manual, and the analysis-domain names in the help text agree with
    the ones documented in MANUAL.md section 14.

Exit 0 with a one-line summary on success, exit 1 listing every
violation found.
"""

import os
import re
import subprocess
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
DOCS = ["README.md", "docs/MANUAL.md", "docs/ARCHITECTURE.md",
        "docs/DOMAINS.md"]

LINK_RE = re.compile(r"(?<!!)\[[^\]]+\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^(#{1,6})\s+(.*?)\s*#*\s*$")
CODE_PATH_RE = re.compile(
    r"`((?:src|docs|tests|tools|bench|examples)/[A-Za-z0-9_./{},-]*)`")
HELP_FLAG_RE = re.compile(r"^\s{2}(--[a-z][a-z-]*)", re.MULTILINE)

errors = []


def error(doc, msg):
    errors.append(f"{doc}: {msg}")


def github_slug(heading):
    """The anchor GitHub generates for a heading (sans duplicate suffix)."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # strip code spans
    text = re.sub(r"\[([^\]]*)\]\([^)]*\)", r"\1", text)  # strip links
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(path):
    """All valid anchor slugs of a markdown file, duplicates suffixed."""
    seen = {}
    anchors = set()
    in_fence = False
    with open(path, encoding="utf-8") as f:
        for line in f:
            if line.lstrip().startswith("```"):
                in_fence = not in_fence
                continue
            if in_fence:
                continue
            m = HEADING_RE.match(line)
            if not m:
                continue
            slug = github_slug(m.group(2))
            n = seen.get(slug, 0)
            seen[slug] = n + 1
            anchors.add(slug if n == 0 else f"{slug}-{n}")
    return anchors


def strip_fences(text):
    out, in_fence = [], False
    for line in text.splitlines():
        if line.lstrip().startswith("```"):
            in_fence = not in_fence
            continue
        if not in_fence:
            out.append(line)
    return "\n".join(out)


def check_links(doc):
    doc_path = os.path.join(REPO, doc)
    text = strip_fences(open(doc_path, encoding="utf-8").read())
    for target in LINK_RE.findall(text):
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        if path_part:
            resolved = os.path.normpath(
                os.path.join(os.path.dirname(doc_path), path_part))
            if not os.path.exists(resolved):
                error(doc, f"dead link target '{target}'")
                continue
        else:
            resolved = doc_path
        if fragment:
            if not resolved.endswith(".md"):
                error(doc, f"anchor on non-markdown target '{target}'")
            elif fragment not in anchors_of(resolved):
                error(doc, f"dead anchor '#{fragment}' in link '{target}'")


def check_code_paths(doc):
    text = strip_fences(open(os.path.join(REPO, doc), encoding="utf-8").read())
    for ref in CODE_PATH_RE.findall(text):
        # `a/b.{h,cpp}` names each expansion; `a/b/` names a directory.
        candidates = []
        brace = re.match(r"(.*)\{([^}]*)\}(.*)", ref)
        if brace:
            pre, alts, post = brace.groups()
            candidates = [pre + a + post for a in alts.split(",")]
        else:
            candidates = [ref]
        for c in candidates:
            if not os.path.exists(os.path.join(REPO, c)):
                error(doc, f"referenced path '{c}' does not exist")


def check_flag_drift(analyze):
    manual = open(os.path.join(REPO, "docs/MANUAL.md"),
                  encoding="utf-8").read()
    proc = subprocess.run([analyze, "--help"], capture_output=True,
                          text=True)
    help_text = proc.stdout + proc.stderr
    if "usage: swift-analyze" not in help_text:
        error("swift-analyze", "--help did not print the usage text")
        return
    flags = set(HELP_FLAG_RE.findall(help_text))
    if not flags:
        error("swift-analyze", "no flags parsed from --help output")
    for flag in sorted(flags - {"--help"}):
        if flag + "=" not in manual and flag not in manual:
            error("docs/MANUAL.md",
                  f"flag {flag} from swift-analyze --help is undocumented")
    # The registered analysis domains must agree with the MANUAL.md
    # section 14 catalog table (rows like "| `taint` | ..."). The
    # binary's own rejection message is the runtime source of truth:
    # "invalid --domain value '...' (valid values: a, b, c)".
    probe = subprocess.run([analyze, "--domain=__docs_probe__"],
                           capture_output=True, text=True)
    m = re.search(r"valid values: ([a-z, ]+)\)", probe.stdout + probe.stderr)
    if not m:
        error("swift-analyze",
              "--domain rejection does not list the valid values")
        return
    binary_domains = set(d.strip() for d in m.group(1).split(","))
    manual_domains = set(re.findall(r"^\| `([a-z]+)`(?: \(default\))? \|",
                                    manual, re.MULTILINE))
    if binary_domains != manual_domains:
        error("docs/MANUAL.md",
              f"domain drift: the binary registers "
              f"{sorted(binary_domains)}, MANUAL.md section 14 table "
              f"documents {sorted(manual_domains)}")


def main():
    analyze = None
    for arg in sys.argv[1:]:
        if arg.startswith("--analyze="):
            analyze = arg[len("--analyze="):]
        else:
            print(f"check_docs: unknown argument '{arg}'", file=sys.stderr)
            return 1
    for doc in DOCS:
        if not os.path.exists(os.path.join(REPO, doc)):
            error(doc, "document missing")
            continue
        check_links(doc)
        check_code_paths(doc)
    if analyze:
        check_flag_drift(analyze)
    if errors:
        for e in errors:
            print(f"check_docs: {e}", file=sys.stderr)
        print(f"check_docs: {len(errors)} violation(s)", file=sys.stderr)
        return 1
    drift = "with" if analyze else "without"
    print(f"check_docs: OK ({len(DOCS)} documents, {drift} --help drift "
          "check)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
