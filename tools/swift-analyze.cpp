//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// swift-analyze — governed typestate analysis of one swift-ir program.
/// Runs TD or the SWIFT hybrid under the resource governor (step / wall /
/// memory limits with staged Green-Yellow-Red degradation) and prints
/// per-site verdicts, the budget's per-phase attribution, and degradation
/// telemetry. A budget-exhausted run can write a checkpoint
/// (--checkpoint-out) that a later invocation resumes (--resume-from)
/// with a larger budget; for TD mode the resumed results are
/// bit-identical to an uninterrupted run.
///
/// Exit code: 0 complete, 2 usage/input error, 3 partial (budget
/// exhausted; verdicts are a sound subset — Unresolved sites need a
/// bigger budget or a resume).
///
//===----------------------------------------------------------------------===//

#include "clients/Registry.h"
#include "framework/Tabulation.h"
#include "govern/Checkpoint.h"
#include "ir/Dumper.h"
#include "obs/Metrics.h"
#include "obs/Trace.h"
#include "support/CliParse.h"
#include "support/FailPoint.h"
#include "typestate/Context.h"

#include <atomic>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>

using namespace swift;

namespace {

/// The live run's governor, published by runTypestateGoverned through
/// GovernedRunOptions::GovSlot for the duration of the run. The handler
/// below reads it; interruptFromSignal() is async-signal-safe (lock-free
/// atomics only, no allocation, no trace emission).
std::atomic<ResourceGovernor *> LiveGovernor{nullptr};

extern "C" void interruptHandler(int) {
  if (ResourceGovernor *Gov =
          LiveGovernor.load(std::memory_order_acquire))
    Gov->interruptFromSignal();
  // No governor published yet (parsing / setup): the run has produced
  // nothing to save, so the default-ish immediate exit is fine — but go
  // through _exit to skip non-signal-safe atexit work.
  else
    _Exit(130);
}

struct ToolOptions {
  std::string InputPath;
  std::string Domain = "typestate"; ///< "typestate" or a client domain.
  std::string Mode = "td";       ///< "td", "swift", or "bu" (clients only).
  uint64_t K = 5;
  uint64_t Theta = 2;
  bool AsyncBu = false;
  unsigned Threads = 1;
  uint64_t Steps = UINT64_MAX;
  double Seconds = 1e18;
  uint64_t MemMb = UINT64_MAX;
  std::string CheckpointOut;
  std::string ResumeFrom;
  std::string FailPoints;
  std::string TraceOut;
  std::string MetricsOut;
  bool ShowHelp = false;
};

/// The valid --domain values: the governed typestate analysis plus every
/// registered client domain, comma-separated for error messages.
std::string clientDomainList() {
  std::string S;
  for (const std::string &N : clients::clientDomainNames())
    S += (S.empty() ? "" : ", ") + N;
  return S;
}

std::string domainValueList() { return "typestate, " + clientDomainList(); }

const char *usageText() {
  return "usage: swift-analyze [options] <program.swiftir>\n"
         "  --domain=NAME       analysis domain: typestate (default,\n"
         "                      governed) or a client domain — taint,\n"
         "                      nullderef, reachdefs, interval\n"
         "                      (docs/MANUAL.md section 14)\n"
         "  --mode=td|swift|bu  analysis mode (default td; bu is valid\n"
         "                      only for client domains)\n"
         "  --k=N               SWIFT trigger threshold (default 5)\n"
         "  --theta=N           SWIFT pruning bound (default 2)\n"
         "  --async             asynchronous bottom-up triggers\n"
         "  --threads=N         bottom-up worker threads (default 1)\n"
         "  --steps=N           step budget (default unlimited)\n"
         "  --seconds=S         wall-clock budget (default unlimited)\n"
         "  --mem-mb=N          memory-estimate cap in MiB (default\n"
         "                      unlimited)\n"
         "  --checkpoint-out=F  write a checkpoint to F if the budget is\n"
         "                      exhausted\n"
         "  --resume-from=F     resume from checkpoint F (the program and\n"
         "                      config come from the checkpoint; the\n"
         "                      positional input is not allowed)\n"
         "  --failpoints=SPEC   arm fault-injection failpoints (see\n"
         "                      docs/MANUAL.md section 8; also armed from\n"
         "                      the SWIFT_FAILPOINTS environment variable)\n"
         "  --trace-out=F       write a Chrome/Perfetto trace of the run\n"
         "                      to F (docs/MANUAL.md section 9)\n"
         "  --metrics-out=F     write a swift-metrics JSON snapshot to F\n"
         "  --help              this text\n"
         "exit: 0 complete, 2 usage/input error, 3 partial result\n";
}

bool parseArgs(int Argc, char **Argv, ToolOptions &O, std::string &Err) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view A = Argv[I];
    std::string_view V;
    if (cli::matchValueFlag(A, "--mode=", V)) {
      if (V != "td" && V != "swift" && V != "bu") {
        Err = "invalid --mode value '" + std::string(V) +
              "' (valid values: td, swift, bu)";
        return false;
      }
      O.Mode = V;
    } else if (cli::matchValueFlag(A, "--domain=", V)) {
      if (V != "typestate" && !clients::isClientDomain(std::string(V))) {
        Err = "invalid --domain value '" + std::string(V) +
              "' (valid values: " + domainValueList() + ")";
        return false;
      }
      O.Domain = V;
    } else if (cli::matchValueFlag(A, "--k=", V)) {
      if (!cli::parseU64(V, O.K)) {
        Err = "invalid --k value '" + std::string(V) + "'";
        return false;
      }
    } else if (cli::matchValueFlag(A, "--theta=", V)) {
      if (!cli::parseU64(V, O.Theta) || O.Theta == 0) {
        Err = "invalid --theta value '" + std::string(V) + "'";
        return false;
      }
    } else if (A == "--async") {
      O.AsyncBu = true;
    } else if (cli::matchValueFlag(A, "--threads=", V)) {
      if (!cli::parseUnsigned(V, O.Threads, 1, 1024)) {
        Err = "invalid --threads value '" + std::string(V) + "'";
        return false;
      }
    } else if (cli::matchValueFlag(A, "--steps=", V)) {
      if (!cli::parseU64(V, O.Steps) || O.Steps == 0) {
        Err = "invalid --steps value '" + std::string(V) + "'";
        return false;
      }
    } else if (cli::matchValueFlag(A, "--seconds=", V)) {
      if (!cli::parseNonNegDouble(V, O.Seconds)) {
        Err = "invalid --seconds value '" + std::string(V) + "'";
        return false;
      }
    } else if (cli::matchValueFlag(A, "--mem-mb=", V)) {
      if (!cli::parseU64(V, O.MemMb) || O.MemMb == 0) {
        Err = "invalid --mem-mb value '" + std::string(V) + "'";
        return false;
      }
    } else if (cli::matchValueFlag(A, "--checkpoint-out=", V)) {
      if (V.empty()) {
        Err = "--checkpoint-out needs a file path";
        return false;
      }
      O.CheckpointOut = V;
    } else if (cli::matchValueFlag(A, "--resume-from=", V)) {
      if (V.empty()) {
        Err = "--resume-from needs a file path";
        return false;
      }
      O.ResumeFrom = V;
    } else if (cli::matchValueFlag(A, "--failpoints=", V)) {
      if (V.empty()) {
        Err = "--failpoints needs a spec";
        return false;
      }
      O.FailPoints = V;
    } else if (cli::matchValueFlag(A, "--trace-out=", V)) {
      if (V.empty()) {
        Err = "--trace-out needs a file path";
        return false;
      }
      O.TraceOut = V;
    } else if (cli::matchValueFlag(A, "--metrics-out=", V)) {
      if (V.empty()) {
        Err = "--metrics-out needs a file path";
        return false;
      }
      O.MetricsOut = V;
    } else if (A == "--help") {
      O.ShowHelp = true;
    } else if (!A.empty() && A[0] == '-') {
      Err = "unknown flag '" + std::string(A) + "'";
      return false;
    } else if (O.InputPath.empty()) {
      O.InputPath = A;
    } else {
      Err = "more than one input file";
      return false;
    }
  }
  if (O.ResumeFrom.empty() && O.InputPath.empty()) {
    Err = "no input file";
    return false;
  }
  if (!O.ResumeFrom.empty() && !O.InputPath.empty()) {
    Err = "--resume-from carries its own program; drop the input file";
    return false;
  }
  if (O.Domain == "typestate" && O.Mode == "bu") {
    Err = "--mode=bu is valid only with a client --domain (valid "
          "domains: " +
          clientDomainList() + ")";
    return false;
  }
  if (O.Domain != "typestate" &&
      (!O.ResumeFrom.empty() || !O.CheckpointOut.empty())) {
    Err = "checkpoint/resume supports only the typestate domain";
    return false;
  }
  return true;
}

/// The client-domain path: parse, run the registry, print normalized
/// results. No governor, checkpointing, or typestate spec involved.
int runClientDomainTool(const ToolOptions &O) {
  std::unique_ptr<Program> Prog;
  try {
    std::ifstream IS(O.InputPath);
    if (!IS) {
      std::fprintf(stderr, "swift-analyze: cannot open '%s'\n",
                   O.InputPath.c_str());
      return 2;
    }
    std::ostringstream Buf;
    Buf << IS.rdbuf();
    Prog = parseProgramText(Buf.str());
  } catch (const std::exception &E) {
    std::fprintf(stderr, "swift-analyze: %s\n", E.what());
    return 2;
  }

  clients::DomainMode Mode = O.Mode == "td"      ? clients::DomainMode::Td
                             : O.Mode == "swift" ? clients::DomainMode::Swift
                                                 : clients::DomainMode::Bu;
  clients::DomainRunLimits Limits;
  Limits.MaxSteps = O.Steps;
  Limits.MaxSeconds = O.Seconds;
  clients::DomainRunResult R = clients::runClientDomain(
      O.Domain, *Prog, Mode, O.K, O.Theta, O.Threads, Limits);

  std::printf("%s/%s: %s in %.2fs, %llu steps\n", O.Domain.c_str(),
              O.Mode.c_str(), R.Timeout ? "PARTIAL" : "complete",
              R.Seconds, static_cast<unsigned long long>(R.Steps));
  std::printf("reports: %llu site(s)\n",
              static_cast<unsigned long long>(R.Reports.size()));
  for (const auto &[P, N] : R.Reports)
    std::printf("  report @%s:%u\n",
                Prog->symbols().text(Prog->proc(P).name()).c_str(), N);
  std::printf("main-exit facts: %llu\n",
              static_cast<unsigned long long>(R.ExitFacts.size()));
  for (const std::string &F : R.ExitFacts)
    std::printf("  %s\n", F.c_str());
  std::printf("summaries: %llu td, %llu bu relation(s)\n",
              static_cast<unsigned long long>(R.TdSummaries),
              static_cast<unsigned long long>(R.BuRelations));
  return R.Timeout ? 3 : 0;
}

uint64_t statOf(const Stats &S, const char *Name) { return S.get(Name); }

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions O;
  std::string Err;
  if (!parseArgs(Argc, Argv, O, Err)) {
    std::fprintf(stderr, "swift-analyze: %s\n%s", Err.c_str(), usageText());
    return 2;
  }
  if (O.ShowHelp) {
    std::fputs(usageText(), stdout);
    return 0;
  }

  if (O.Domain != "typestate")
    return runClientDomainTool(O);

  try {
    failpoint::armFromEnv();
    if (!O.FailPoints.empty())
      failpoint::armSpec(O.FailPoints);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "swift-analyze: %s\n%s", E.what(), usageText());
    return 2;
  }

  if (!O.TraceOut.empty())
    obs::TraceRecorder::instance().start();
  if (!O.MetricsOut.empty())
    obs::MetricsRegistry::instance().enable();

  std::unique_ptr<Program> Prog;
  GovernedRunOptions GO;
  TsTabSnapshot Resume;
  std::string TrackedClass;

  try {
    if (!O.ResumeFrom.empty()) {
      ParsedCheckpoint PC = loadCheckpointFile(O.ResumeFrom);
      Prog = std::move(PC.Prog);
      GO.Config = PC.Checkpoint.Config;
      TrackedClass = PC.Checkpoint.TrackedClass;
      Resume = std::move(PC.Checkpoint.Snapshot);
      GO.ResumeFrom = &Resume;
      std::printf("resuming from %s (%llu steps consumed before the "
                  "checkpoint)\n",
                  O.ResumeFrom.c_str(),
                  static_cast<unsigned long long>(
                      PC.Checkpoint.StepsConsumed));
    } else {
      std::ifstream IS(O.InputPath);
      if (!IS) {
        std::fprintf(stderr, "swift-analyze: cannot open '%s'\n",
                     O.InputPath.c_str());
        return 2;
      }
      std::ostringstream Buf;
      Buf << IS.rdbuf();
      Prog = parseProgramText(Buf.str());
      GO.Config.K = O.Mode == "td" ? NoBuTrigger : O.K;
      GO.Config.Theta = O.Mode == "td" ? 1 : O.Theta;
      GO.Config.AsyncBu = O.AsyncBu;
      GO.Config.Threads = O.Threads;
    }
  } catch (const CheckpointLoadError &E) {
    // Malformed *input*, not a usage error: name the failing file and the
    // typed kind, and do not print the usage text. Exit code stays 2.
    std::fprintf(stderr, "swift-analyze: malformed checkpoint '%s': %s\n",
                 O.ResumeFrom.c_str(), E.what());
    return 2;
  } catch (const std::exception &E) {
    std::fprintf(stderr, "swift-analyze: %s\n", E.what());
    return 2;
  }

  if (Prog->numSpecs() == 0) {
    std::fprintf(stderr, "swift-analyze: program declares no typestate "
                         "spec\n");
    return 2;
  }
  Symbol Tracked = TrackedClass.empty()
                       ? Prog->spec(0).name()
                       : Prog->symbols().intern(TrackedClass);
  if (!Prog->specFor(Tracked)) {
    std::fprintf(stderr, "swift-analyze: no spec for class '%s'\n",
                 TrackedClass.c_str());
    return 2;
  }

  GO.Limits.MaxSteps = O.Steps;
  GO.Limits.MaxSeconds = O.Seconds;
  GO.Limits.MaxMemoryBytes =
      O.MemMb == UINT64_MAX ? UINT64_MAX : O.MemMb * (1024 * 1024);

  TsContext Ctx(*Prog, Tracked);
  TsTabSnapshot Checkpoint;
  GO.CheckpointOut = &Checkpoint;

  // SIGINT/SIGTERM land on the governor's Red latch: the run winds down
  // through the normal budget-exhausted path — sound partial verdicts, a
  // checkpoint if requested, flushed trace/metrics, exit code 3 — instead
  // of dying with nothing.
  GO.GovSlot = &LiveGovernor;
  {
    struct sigaction SA = {};
    SA.sa_handler = interruptHandler;
    sigemptyset(&SA.sa_mask);
    sigaction(SIGINT, &SA, nullptr);
    sigaction(SIGTERM, &SA, nullptr);
  }
  // Run-is-live marker for scripted drivers (the SIGINT CLI test waits
  // for it before signaling, so the signal always lands mid-run).
  std::fprintf(stderr, "analysis running\n");
  std::fflush(stderr);

  TsGovernedResult G = runTypestateGoverned(Ctx, GO);

  uint64_t Proved = 0, Errors = 0, Unresolved = 0;
  for (TsVerdict V : G.Verdicts) {
    if (V == TsVerdict::Proved)
      ++Proved;
    else if (V == TsVerdict::ErrorReported)
      ++Errors;
    else
      ++Unresolved;
  }

  std::printf("%s: %s in %.2fs, %llu steps\n",
              Prog->symbols().text(Tracked).c_str(),
              G.Partial ? "PARTIAL" : "complete", G.Run.Seconds,
              static_cast<unsigned long long>(G.Run.Steps));
  std::printf("verdicts: %llu proved, %llu error, %llu unresolved "
              "(of %llu sites)\n",
              static_cast<unsigned long long>(Proved),
              static_cast<unsigned long long>(Errors),
              static_cast<unsigned long long>(Unresolved),
              static_cast<unsigned long long>(G.Verdicts.size()));
  for (SiteId S : G.Run.ErrorSites)
    std::printf("  error @%u\n", S);
  std::printf("pressure: peak %s, peak memory estimate %llu bytes\n",
              pressureName(G.Peak),
              static_cast<unsigned long long>(G.PeakMemoryBytes));
  std::printf("budget attribution: td %llu, sync-bu %llu, async-bu %llu "
              "steps\n",
              static_cast<unsigned long long>(
                  statOf(G.Run.Stat, "budget.td_steps")),
              static_cast<unsigned long long>(
                  statOf(G.Run.Stat, "budget.sync_bu_steps")),
              static_cast<unsigned long long>(
                  statOf(G.Run.Stat, "budget.async_bu_steps")));
  if (statOf(G.Run.Stat, "gov.bu_suppressed") ||
      statOf(G.Run.Stat, "gov.theta_shrunk") ||
      statOf(G.Run.Stat, "gov.shed_summaries") ||
      statOf(G.Run.Stat, "gov.bu_cancelled"))
    std::printf("degradation: %llu bu runs suppressed, %llu theta "
                "shrinks, %llu summary caches shed, %llu async runs "
                "cancelled (%llu steps shed)\n",
                static_cast<unsigned long long>(
                    statOf(G.Run.Stat, "gov.bu_suppressed")),
                static_cast<unsigned long long>(
                    statOf(G.Run.Stat, "gov.theta_shrunk")),
                static_cast<unsigned long long>(
                    statOf(G.Run.Stat, "gov.shed_summaries")),
                static_cast<unsigned long long>(
                    statOf(G.Run.Stat, "gov.bu_cancelled")),
                static_cast<unsigned long long>(
                    statOf(G.Run.Stat, "gov.cancelled_bu_steps")));

  if (G.Partial && !O.CheckpointOut.empty()) {
    try {
      TsCheckpoint C;
      C.Config = GO.Config;
      C.TrackedClass = Prog->symbols().text(Tracked);
      C.StepsConsumed = Checkpoint.StepsConsumed;
      C.Snapshot = std::move(Checkpoint);
      saveCheckpointFile(O.CheckpointOut, *Prog, C);
      std::printf("checkpoint written to %s (resume with "
                  "--resume-from=%s)\n",
                  O.CheckpointOut.c_str(), O.CheckpointOut.c_str());
    } catch (const std::exception &E) {
      std::fprintf(stderr, "swift-analyze: %s\n", E.what());
      return 2;
    }
  }

  // Observability flushes come last and are advisory: a trace/metrics
  // I/O failure warns on stderr but never changes the analysis exit code.
  if (!O.TraceOut.empty()) {
    obs::TraceRecorder::instance().stop();
    std::string FlushErr;
    if (!obs::TraceRecorder::instance().flushToFile(O.TraceOut, &FlushErr))
      std::fprintf(stderr, "swift-analyze: warning: trace write failed: "
                           "%s\n",
                   FlushErr.c_str());
    else
      std::printf("trace written to %s (load at ui.perfetto.dev)\n",
                  O.TraceOut.c_str());
  }
  if (!O.MetricsOut.empty()) {
    std::string FlushErr;
    if (!obs::MetricsRegistry::instance().writeSnapshot(
            O.MetricsOut, &G.Run.Stat, &FlushErr))
      std::fprintf(stderr, "swift-analyze: warning: metrics write "
                           "failed: %s\n",
                   FlushErr.c_str());
    else
      std::printf("metrics written to %s\n", O.MetricsOut.c_str());
  }

  return G.Partial ? 3 : 0;
}
