//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// swift-shardrun — sharded multi-process pure-bottom-up analysis with a
/// fault-tolerant summary spool. Plans K shards over the call-graph SCC
/// condensation, fork/execs swift-shard-worker per ready shard (up to
/// --workers concurrently), supervises them (exit status + heartbeat,
/// capped-backoff restarts), and assembles final per-site verdicts from
/// the spool. When a shard permanently fails, falls back to the governed
/// hybrid TD/theta analysis, so verdicts are always sound.
///
/// Exit codes: 0 complete (sound full verdicts, sharded or fallback),
/// 2 usage/input error, 3 partial (fallback ran out of budget too;
/// verdicts are a sound subset).
///
//===----------------------------------------------------------------------===//

#include "obs/Metrics.h"
#include "obs/TraceMerge.h"
#include "shard/Coordinator.h"
#include "support/AtomicFile.h"
#include "support/CliParse.h"

#include <cstdio>
#include <string>
#include <string_view>
#include <vector>

#include <unistd.h>

using namespace swift;

namespace {

const char *usageText() {
  return "usage: swift-shardrun [options] --spool-dir=D <program.swiftir>\n"
         "  --shards=K            shard count (default 2; clamped to the\n"
         "                        program's SCC count)\n"
         "  --workers=N           max concurrent worker processes\n"
         "                        (default = shards)\n"
         "  --spool-dir=D         summary spool directory (required; must\n"
         "                        exist; reused segments survive reruns)\n"
         "  --class=NAME          tracked typestate class (default: first\n"
         "                        spec)\n"
         "  --worker-bin=F        swift-shard-worker path (default: next\n"
         "                        to this binary)\n"
         "  --max-steps=N         per-worker solver step budget\n"
         "  --restart-budget=N    restarts per shard before it fails\n"
         "                        (default 3)\n"
         "  --heartbeat-timeout-ms=N  stale-heartbeat kill threshold\n"
         "                        (default 30000; 0 disables)\n"
         "  --failpoints=SPEC     failpoint spec for incarnation-0 workers\n"
         "  --failpoints-all-incarnations  also arm restarted workers\n"
         "  --fallback-max-steps=N  budget of the governed TD fallback\n"
         "  --trace-out=F         merged multi-process Chrome trace\n"
         "  --metrics-out=F       coordinator metrics snapshot on exit\n"
         "                        (shard.restarts, shard.heartbeat_kills,\n"
         "                        shard.failed, shard.fallback)\n"
         "  --verbose             supervision narration on stderr\n"
         "  --help                this text\n"
         "exit: 0 complete, 2 usage/input error, 3 partial verdicts\n";
}

std::string defaultWorkerBin() {
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N <= 0)
    return "swift-shard-worker";
  Buf[N] = '\0';
  std::string Self(Buf);
  size_t Slash = Self.rfind('/');
  if (Slash == std::string::npos)
    return "swift-shard-worker";
  return Self.substr(0, Slash + 1) + "swift-shard-worker";
}

} // namespace

int main(int Argc, char **Argv) {
  shard::CoordinatorOptions O;
  std::string TraceOut, MetricsOut;
  bool ShowHelp = false, WorkersSet = false;
  auto Usage = [](const std::string &Err) {
    std::fprintf(stderr, "swift-shardrun: %s\n%s", Err.c_str(), usageText());
    return 2;
  };
  for (int I = 1; I < Argc; ++I) {
    std::string_view A = Argv[I];
    std::string_view V;
    if (cli::matchValueFlag(A, "--shards=", V)) {
      if (!cli::parseUnsigned(V, O.NumShards, 1, 1u << 16))
        return Usage("invalid --shards value '" + std::string(V) + "'");
    } else if (cli::matchValueFlag(A, "--workers=", V)) {
      if (!cli::parseUnsigned(V, O.MaxWorkers, 1, 1u << 16))
        return Usage("invalid --workers value '" + std::string(V) + "'");
      WorkersSet = true;
    } else if (cli::matchValueFlag(A, "--spool-dir=", V)) {
      O.SpoolDir = V;
    } else if (cli::matchValueFlag(A, "--class=", V)) {
      O.TrackedClass = V;
    } else if (cli::matchValueFlag(A, "--worker-bin=", V)) {
      O.WorkerBin = V;
    } else if (cli::matchValueFlag(A, "--max-steps=", V)) {
      if (!cli::parseU64(V, O.WorkerMaxSteps) || O.WorkerMaxSteps == 0)
        return Usage("invalid --max-steps value '" + std::string(V) + "'");
    } else if (cli::matchValueFlag(A, "--restart-budget=", V)) {
      if (!cli::parseUnsigned(V, O.RestartBudget, 0, 1u << 16))
        return Usage("invalid --restart-budget value '" + std::string(V) +
                     "'");
    } else if (cli::matchValueFlag(A, "--heartbeat-timeout-ms=", V)) {
      if (!cli::parseUnsigned(V, O.HeartbeatTimeoutMs, 0, 1u << 30))
        return Usage("invalid --heartbeat-timeout-ms value '" +
                     std::string(V) + "'");
    } else if (cli::matchValueFlag(A, "--failpoints=", V)) {
      if (V.empty())
        return Usage("--failpoints needs a spec");
      O.WorkerFailpoints = V;
    } else if (A == "--failpoints-all-incarnations") {
      O.FailpointsAllIncarnations = true;
    } else if (cli::matchValueFlag(A, "--fallback-max-steps=", V)) {
      if (!cli::parseU64(V, O.FallbackMaxSteps) || O.FallbackMaxSteps == 0)
        return Usage("invalid --fallback-max-steps value '" +
                     std::string(V) + "'");
    } else if (cli::matchValueFlag(A, "--trace-out=", V)) {
      if (V.empty())
        return Usage("--trace-out needs a file path");
      TraceOut = V;
    } else if (cli::matchValueFlag(A, "--metrics-out=", V)) {
      if (V.empty())
        return Usage("--metrics-out needs a file path");
      MetricsOut = V;
    } else if (A == "--verbose") {
      O.Verbose = true;
    } else if (A == "--help") {
      ShowHelp = true;
    } else if (!A.empty() && A[0] == '-') {
      return Usage("unknown flag '" + std::string(A) + "'");
    } else if (O.ProgramPath.empty()) {
      O.ProgramPath = A;
    } else {
      return Usage("more than one input file");
    }
  }
  if (ShowHelp) {
    std::fputs(usageText(), stdout);
    return 0;
  }
  if (O.ProgramPath.empty())
    return Usage("no input file");
  if (O.SpoolDir.empty())
    return Usage("--spool-dir is required");
  if (!WorkersSet)
    O.MaxWorkers = O.NumShards;
  if (O.WorkerBin.empty())
    O.WorkerBin = defaultWorkerBin();
  if (!TraceOut.empty())
    O.TraceDir = O.SpoolDir;
  if (!MetricsOut.empty())
    obs::MetricsRegistry::instance().enable();

  shard::ShardRunReport R;
  try {
    R = shard::runCoordinator(O);
  } catch (const std::exception &E) {
    std::fprintf(stderr, "swift-shardrun: %s\n", E.what());
    return 2;
  }

  uint64_t Proved = 0, Errors = 0, Unresolved = 0;
  for (TsVerdict V : R.Verdicts) {
    if (V == TsVerdict::Proved)
      ++Proved;
    else if (V == TsVerdict::ErrorReported)
      ++Errors;
    else
      ++Unresolved;
  }
  std::printf("shardrun: %s (%u restarts, %u heartbeat kills)\n",
              R.Complete           ? "complete"
              : R.FallbackPartial  ? "FALLBACK PARTIAL"
                                   : "fallback complete",
              R.Restarts, R.HeartbeatKills);
  if (!R.FailedShards.empty()) {
    std::printf("failed shards:");
    for (unsigned S : R.FailedShards)
      std::printf(" %u", S);
    std::printf("\n");
  }
  std::printf("verdicts: %llu proved, %llu error, %llu unresolved "
              "(of %llu sites)\n",
              static_cast<unsigned long long>(Proved),
              static_cast<unsigned long long>(Errors),
              static_cast<unsigned long long>(Unresolved),
              static_cast<unsigned long long>(R.Verdicts.size()));
  for (SiteId S : R.ErrorSites)
    std::printf("  error @%u\n", S);

  // Merge the per-worker traces into one multi-process timeline.
  // Advisory: trace I/O must never change the analysis exit code.
  if (!TraceOut.empty()) {
    std::vector<obs::TraceInput> Inputs;
    for (const std::string &F : R.TraceFiles) {
      try {
        std::string Json = readWholeFile(F);
        size_t Slash = F.rfind('/');
        Inputs.push_back(
            {Slash == std::string::npos ? F : F.substr(Slash + 1),
             std::move(Json)});
      } catch (const std::exception &) {
        // A killed worker may never have flushed its trace; skip it.
      }
    }
    try {
      obs::TraceMergeStats MS;
      std::string Merged = obs::mergeTraces(Inputs, &MS);
      writeFileAtomic(TraceOut, Merged, "obs.flush");
      std::printf("trace: merged %zu worker trace(s), %zu events -> %s\n",
                  Inputs.size(), MS.Events, TraceOut.c_str());
    } catch (const std::exception &E) {
      std::fprintf(stderr, "swift-shardrun: warning: trace merge failed: "
                           "%s\n",
                   E.what());
    }
  }

  // Supervision counters (shard.restarts, shard.heartbeat_kills,
  // shard.failed, shard.fallback). Advisory, like the trace merge above.
  if (!MetricsOut.empty()) {
    std::string Err;
    if (!obs::MetricsRegistry::instance().writeSnapshot(MetricsOut,
                                                        nullptr, &Err))
      std::fprintf(stderr,
                   "swift-shardrun: warning: metrics write failed: %s\n",
                   Err.c_str());
    else
      std::printf("metrics: %s\n", MetricsOut.c_str());
  }

  return R.FallbackPartial ? 3 : 0;
}
