//===----------------------------------------------------------------------===//
//
// Part of the SWIFT hybrid-analysis reproduction.
//
//===----------------------------------------------------------------------===//
///
/// \file
/// swift-crashtest — the crash-recovery campaign. For each fuzz seed it
/// exhausts a governed TD run on a tiny step budget and saves checkpoint
/// A, then for every kill schedule it forks a child that resumes from A
/// and tries to save the successor checkpoint B over the same path with
/// a '!kill' failpoint armed somewhere inside the save (open, the Nth
/// write chunk, fsync, close, rename) — the child dies mid-write exactly
/// as on a power cut. The parent then asserts the crash-safety contract:
///
///  1. the surviving file loads cleanly (magic/length/CRC validate), and
///  2. it is byte-identical to either the complete old checkpoint A or
///     the complete new checkpoint B — never a torn mix, and
///  3. resuming from the surviving file with an unlimited budget yields
///     exactly the uninterrupted run's results (the PR 3 resume-
///     coincidence oracle, extended to post-crash states).
///
/// The same contract is enforced on the serve engine's summary store: a
/// child warm-starts from store A, applies a generated procedure edit,
/// and is killed somewhere inside the store save (failpoints
/// serve.save.open/write/flush/close/rename). The survivor must decode
/// cleanly, be byte-identical to old-A or new-B, and a warm start from
/// it — replaying the edit when the crash preserved A — must end with
/// exactly the error sites and verdicts of a from-scratch solve of the
/// edited program.
///
/// The fourth campaign targets the serve daemon's write-ahead edit
/// journal: a child warm-starts from a baseline store with an empty
/// journal, applies a short accepted-edit sequence (each edit fsync-
/// appended before commit), and compacts — and is killed mid-append
/// (journal.append.*), mid-warm-start-save or mid-compaction-store-save
/// (serve.save.*), or mid-journal-reset (journal.compact.*). The parent
/// asserts: the store survivor is byte-for-byte the baseline or the
/// compacted snapshot; the journal survivor is a clean byte prefix of
/// the uninterrupted run's journal (a fresh reset header is itself such
/// a prefix); and store+journal recovery coincides exactly — error
/// sites, all verdicts, program text — with the reference state over
/// the same accepted-edit prefix.
///
/// The third campaign kills whole *worker processes* of the sharded
/// multi-process analysis: for each seed it runs the real coordinator
/// (fork/exec of swift-shard-worker) to completion once as the
/// reference, then re-runs it on an empty spool under kill schedules
/// that land inside the spool-segment save (spool.save.*) or mid-SCC
/// solve (worker.scc.solve), letting the coordinator restart the dead
/// workers. After every run:
///
///  1. each surviving seg-*.spool decodes cleanly and is byte-for-byte
///     a segment the uninterrupted run wrote — never torn, never bytes
///     no clean run would produce, and
///  2. the recovered run's error sites and verdicts equal the
///     uninterrupted run's, and
///  3. under an every-incarnation kill that drains the restart budget,
///     the coordinator's governed fallback still produces sound
///     verdicts.
///
/// Exit code: 0 all seeds clean, 1 contract violation, 2 usage error.
///
//===----------------------------------------------------------------------===//

#include "difftest/Difftest.h"
#include "framework/Tabulation.h"
#include "govern/Checkpoint.h"
#include "ir/Dumper.h"
#include "serve/EditGen.h"
#include "serve/Engine.h"
#include "serve/Journal.h"
#include "serve/Store.h"
#include "shard/Coordinator.h"
#include "shard/Spool.h"
#include "support/AtomicFile.h"
#include "support/CliParse.h"
#include "support/FailPoint.h"
#include "typestate/Context.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <map>
#include <memory>
#include <string>
#include <string_view>

#include <sys/wait.h>
#include <unistd.h>

using namespace swift;

namespace {

struct ToolOptions {
  uint64_t Seeds = 25;
  uint64_t FirstSeed = 1;
  uint64_t Steps = 40; ///< Phase-1 budget that provokes the checkpoint.
  std::string OutDir = "results/crashtest";
  std::string WorkerBin; ///< Default: swift-shard-worker next to us.
  std::string JsonOut;   ///< --json-out= machine-readable result file.
  bool ShowHelp = false;
};

/// Kill positions inside saveCheckpointFile. nth(N) on the write chunk
/// moves the crash through the payload (512-byte chunks); the others hit
/// the open / fsync / close / rename edges.
const char *const KillSchedules[] = {
    "ckpt.save.open=nth(1)!kill",  "ckpt.save.write=nth(1)!kill",
    "ckpt.save.write=nth(2)!kill", "ckpt.save.write=nth(4)!kill",
    "ckpt.save.flush=nth(1)!kill", "ckpt.save.close=nth(1)!kill",
    "ckpt.save.rename=nth(1)!kill"};

const char *usageText() {
  return "usage: swift-crashtest [options]\n"
         "  --seeds=N       fuzz seeds to test (default 25)\n"
         "  --first-seed=N  first seed (default 1)\n"
         "  --steps=N       step budget provoking the first checkpoint\n"
         "                  (default 40)\n"
         "  --out-dir=DIR   scratch directory (default results/crashtest)\n"
         "  --worker-bin=F  swift-shard-worker path for the worker-kill\n"
         "                  campaign (default: next to this binary)\n"
         "  --json-out=F    write a versioned machine-readable result\n"
         "                  (format swift-crashtest v1: per-campaign\n"
         "                  seeds/kills/violations) for CI gating\n"
         "  --help          this text\n"
         "exit: 0 clean, 1 crash-safety violation, 2 usage error\n";
}

bool parseArgs(int Argc, char **Argv, ToolOptions &O, std::string &Err) {
  for (int I = 1; I < Argc; ++I) {
    std::string_view A = Argv[I];
    std::string_view V;
    if (cli::matchValueFlag(A, "--seeds=", V)) {
      if (!cli::parseU64(V, O.Seeds) || O.Seeds == 0) {
        Err = "invalid --seeds value '" + std::string(V) + "'";
        return false;
      }
    } else if (cli::matchValueFlag(A, "--first-seed=", V)) {
      if (!cli::parseU64(V, O.FirstSeed)) {
        Err = "invalid --first-seed value '" + std::string(V) + "'";
        return false;
      }
    } else if (cli::matchValueFlag(A, "--steps=", V)) {
      if (!cli::parseU64(V, O.Steps) || O.Steps == 0) {
        Err = "invalid --steps value '" + std::string(V) + "'";
        return false;
      }
    } else if (cli::matchValueFlag(A, "--out-dir=", V)) {
      if (V.empty()) {
        Err = "--out-dir needs a path";
        return false;
      }
      O.OutDir = V;
    } else if (cli::matchValueFlag(A, "--worker-bin=", V)) {
      if (V.empty()) {
        Err = "--worker-bin needs a path";
        return false;
      }
      O.WorkerBin = V;
    } else if (cli::matchValueFlag(A, "--json-out=", V)) {
      if (V.empty()) {
        Err = "--json-out needs a file path";
        return false;
      }
      O.JsonOut = V;
    } else if (A == "--help") {
      O.ShowHelp = true;
    } else {
      Err = "unknown flag '" + std::string(A) + "'";
      return false;
    }
  }
  return true;
}

GovernedRunOptions tdOptions(uint64_t MaxSteps) {
  GovernedRunOptions GO;
  GO.Config.K = NoBuTrigger; // pure TD: single-threaded, fork-safe,
  GO.Config.Theta = 1;       // and bit-identical resume guaranteed
  GO.Limits.MaxSteps = MaxSteps;
  return GO;
}

/// Loads the checkpoint at \p Path and resumes it under \p MaxSteps.
/// On exhaustion (and with \p SavePath nonempty) saves the successor
/// checkpoint over \p SavePath.
TsGovernedResult resumeFromFile(const std::string &Path, uint64_t MaxSteps,
                                const std::string &SavePath) {
  ParsedCheckpoint PC = loadCheckpointFile(Path);
  TsContext Ctx(*PC.Prog,
                PC.Prog->symbols().intern(PC.Checkpoint.TrackedClass));
  GovernedRunOptions GO = tdOptions(MaxSteps);
  GO.Config = PC.Checkpoint.Config;
  GO.ResumeFrom = &PC.Checkpoint.Snapshot;
  TsTabSnapshot Out;
  GO.CheckpointOut = &Out;
  TsGovernedResult G = runTypestateGoverned(Ctx, GO);
  if (G.Partial && !SavePath.empty()) {
    TsCheckpoint C;
    C.Config = GO.Config;
    C.TrackedClass = PC.Checkpoint.TrackedClass;
    C.StepsConsumed = Out.StepsConsumed;
    C.Snapshot = std::move(Out);
    saveCheckpointFile(SavePath, *PC.Prog, C);
  }
  return G;
}

struct SeedStats {
  uint64_t Tested = 0;    ///< Seeds whose phase-1 run went partial.
  uint64_t Completed = 0; ///< Seeds that finished under the tiny budget.
  uint64_t KillsLanded = 0;
  uint64_t ChildCompleted = 0;
  uint64_t Violations = 0;
};

bool coincides(const TsGovernedResult &A, const TsGovernedResult &B) {
  return A.Run.ErrorSites == B.Run.ErrorSites &&
         A.Run.ErrorPoints == B.Run.ErrorPoints &&
         A.Run.MainExit == B.Run.MainExit &&
         A.Run.TdSummaries == B.Run.TdSummaries &&
         A.Verdicts == B.Verdicts;
}

void reportViolation(SeedStats &St, uint64_t Seed, const char *Schedule,
                     const std::string &What) {
  ++St.Violations;
  std::printf("seed %llu [%s]: VIOLATION: %s\n",
              static_cast<unsigned long long>(Seed), Schedule, What.c_str());
}

void runSeed(uint64_t Seed, const ToolOptions &O, SeedStats &St) {
  // Normalise the generated program through one text round trip so its
  // symbol table matches what every checkpoint reload will reconstruct.
  // parseProgramText interns symbols in textual order, which can differ
  // from generation order; print/parse is a fixed point after one pass,
  // so the reference run and all resumed runs share identical symbol
  // ids and coincides() can compare abstract states exactly.
  std::unique_ptr<Program> Prog = parseProgramText(
      programToText(*generateFuzzProgram(difftest::fuzzConfigForSeed(Seed))));
  TsContext Ctx(*Prog, Prog->spec(0).name());

  // The uninterrupted reference run every recovery must coincide with.
  TsGovernedResult Full = runTypestateGoverned(Ctx, tdOptions(UINT64_MAX));

  // Phase 1: exhaust on the tiny budget, save checkpoint A.
  GovernedRunOptions GO = tdOptions(O.Steps);
  TsTabSnapshot Snap;
  GO.CheckpointOut = &Snap;
  TsGovernedResult G = runTypestateGoverned(Ctx, GO);
  if (!G.Partial) {
    ++St.Completed;
    return;
  }
  ++St.Tested;

  std::string CkPath =
      O.OutDir + "/seed" + std::to_string(Seed) + ".swiftckpt";
  TsCheckpoint A;
  A.Config = GO.Config;
  A.TrackedClass = Prog->symbols().text(Prog->spec(0).name());
  A.StepsConsumed = Snap.StepsConsumed;
  A.Snapshot = std::move(Snap);
  saveCheckpointFile(CkPath, *Prog, A);
  const std::string TextA = readWholeFile(CkPath);

  // What the successor checkpoint B will be, byte for byte: the child's
  // resume is deterministic (single-threaded, step-limited), so a dry
  // run over a scratch path predicts it exactly.
  const uint64_t ResumeSteps = std::max<uint64_t>(4, O.Steps / 2);
  std::string DryPath = CkPath + ".dry";
  writeFileAtomic(DryPath, TextA, "crashtest.scratch");
  TsGovernedResult Dry = resumeFromFile(DryPath, ResumeSteps, DryPath);
  const std::string TextB = Dry.Partial ? readWholeFile(DryPath) : "";
  ::unlink(DryPath.c_str());

  for (const char *Schedule : KillSchedules) {
    // Fresh A on disk, then crash a child mid-save of B.
    writeFileAtomic(CkPath, TextA, "crashtest.scratch");

    pid_t Pid = ::fork();
    if (Pid < 0) {
      reportViolation(St, Seed, Schedule, "fork failed");
      return;
    }
    if (Pid == 0) {
      // Child: arm the kill and redo the resume+save. _exit keeps the
      // parent's stdio buffers from double-flushing.
      try {
        failpoint::armSpec(Schedule);
        resumeFromFile(CkPath, ResumeSteps, CkPath);
      } catch (...) {
        ::_exit(3);
      }
      ::_exit(0);
    }

    int Status = 0;
    if (::waitpid(Pid, &Status, 0) != Pid || !WIFEXITED(Status)) {
      reportViolation(St, Seed, Schedule,
                      "child did not exit normally (signal?)");
      continue;
    }
    int Code = WEXITSTATUS(Status);
    if (Code == failpoint::KillExitCode)
      ++St.KillsLanded;
    else if (Code == 0)
      ++St.ChildCompleted; // schedule beyond the save's chunk count
    else {
      reportViolation(St, Seed, Schedule,
                      "child failed with exit " + std::to_string(Code));
      continue;
    }

    // Contract 1+2: the survivor is a complete, valid old-or-new file.
    std::string Survivor;
    try {
      Survivor = readWholeFile(CkPath);
      (void)parseCheckpointFile(Survivor);
    } catch (const std::exception &E) {
      reportViolation(St, Seed, Schedule,
                      std::string("surviving checkpoint unusable: ") +
                          E.what());
      continue;
    }
    if (Survivor != TextA && (TextB.empty() || Survivor != TextB)) {
      reportViolation(St, Seed, Schedule,
                      "surviving checkpoint is neither the old nor the "
                      "new snapshot (torn write?)");
      continue;
    }

    // Contract 3: recovery coincides with the uninterrupted run.
    try {
      TsGovernedResult Rec = resumeFromFile(CkPath, UINT64_MAX, "");
      if (Rec.Partial || !coincides(Rec, Full))
        reportViolation(St, Seed, Schedule,
                        "post-crash resume diverges from the "
                        "uninterrupted run");
    } catch (const std::exception &E) {
      reportViolation(St, Seed, Schedule,
                      std::string("post-crash resume failed: ") + E.what());
    }
  }
  ::unlink(CkPath.c_str());
}

//===----------------------------------------------------------------------===//
// Serve-store campaign
//===----------------------------------------------------------------------===//

/// Kill positions inside the serve engine's store save (the same
/// writeFileAtomic edges as the checkpoint, under the "serve.save"
/// failpoint prefix).
const char *const ServeKillSchedules[] = {
    "serve.save.open=nth(1)!kill",  "serve.save.write=nth(1)!kill",
    "serve.save.write=nth(2)!kill", "serve.save.write=nth(4)!kill",
    "serve.save.flush=nth(1)!kill", "serve.save.close=nth(1)!kill",
    "serve.save.rename=nth(1)!kill"};

serve::EngineOptions serveOptions() {
  serve::EngineOptions EO;
  // Tight caps so unprunable fuzz programs fail fast and get skipped
  // (relation blow-up is a resource fact, the same skip the difftest
  // oracle applies), instead of stalling the seed loop.
  EO.MaxStepsPerRequest = 2'000'000;
  EO.MaxRelsPerPoint = 1 << 12;
  return EO;
}

/// Warm-start from the store at \p Path, fill any summary gaps, apply
/// \p Edit when the store predates it, and save back over \p Path.
/// Returns false when any solve blew its budget (nothing saved).
bool resumeStore(const std::string &Path, const serve::FuzzEdit &Edit,
                 bool ApplyEdit) {
  serve::ServeEngine E(serve::ServeEngine::FromStore{Path}, serveOptions());
  if (!E.solveInitial().Ok)
    return false;
  if (ApplyEdit) {
    serve::EditResult R = E.applyEdit(Edit.ProcName, Edit.Body);
    if (!R.Ok)
      return false;
  }
  E.saveStore(Path);
  return true;
}

/// One seed of the serve-store kill campaign. Store A is the cold
/// solve's save; store B is A after one generated procedure edit. Every
/// kill schedule crashes a child somewhere inside the save of B, then
/// the parent asserts decode-clean + old-or-new bytes + edit-replayed
/// recovery coincides with a from-scratch solve of the edited program.
void runServeSeed(uint64_t Seed, const ToolOptions &O, SeedStats &St) {
  std::string Text =
      programToText(*generateFuzzProgram(difftest::fuzzConfigForSeed(Seed)));

  serve::ServeEngine Cold(Text, serveOptions());
  if (!Cold.solveInitial().Ok) {
    ++St.Completed; // blow-up under the tight caps: skip, don't fail
    return;
  }
  std::optional<serve::FuzzEdit> Edit = serve::makeFuzzEdit(Text, Seed, 0);
  if (!Edit) {
    ++St.Completed; // nothing editable in this program
    return;
  }

  std::string StPath =
      O.OutDir + "/seed" + std::to_string(Seed) + ".swiftstore";
  Cold.saveStore(StPath);
  const std::string BytesA = readWholeFile(StPath);

  // Predict store B byte-for-byte: the child's warm-start + edit + save
  // is deterministic, so replaying it over a scratch path tells us what
  // a completed save would have written.
  std::string DryPath = StPath + ".dry";
  writeFileAtomic(DryPath, BytesA, "crashtest.scratch");
  if (!resumeStore(DryPath, *Edit, /*ApplyEdit=*/true)) {
    ::unlink(DryPath.c_str());
    ::unlink(StPath.c_str());
    ++St.Completed; // the edit itself blew the budget: skip
    return;
  }
  const std::string BytesB = readWholeFile(DryPath);
  ::unlink(DryPath.c_str());
  ++St.Tested;

  // The from-scratch reference on the edited program, computed once.
  serve::ServeEngine Scratch(Text, serveOptions());
  bool ScratchOk = Scratch.solveInitial().Ok &&
                   Scratch.applyEdit(Edit->ProcName, Edit->Body).Ok;

  for (const char *Schedule : ServeKillSchedules) {
    writeFileAtomic(StPath, BytesA, "crashtest.scratch");

    pid_t Pid = ::fork();
    if (Pid < 0) {
      reportViolation(St, Seed, Schedule, "fork failed");
      return;
    }
    if (Pid == 0) {
      try {
        failpoint::armSpec(Schedule);
        resumeStore(StPath, *Edit, /*ApplyEdit=*/true);
      } catch (...) {
        ::_exit(3);
      }
      ::_exit(0);
    }

    int Status = 0;
    if (::waitpid(Pid, &Status, 0) != Pid || !WIFEXITED(Status)) {
      reportViolation(St, Seed, Schedule,
                      "child did not exit normally (signal?)");
      continue;
    }
    int Code = WEXITSTATUS(Status);
    if (Code == failpoint::KillExitCode)
      ++St.KillsLanded;
    else if (Code == 0)
      ++St.ChildCompleted;
    else {
      reportViolation(St, Seed, Schedule,
                      "child failed with exit " + std::to_string(Code));
      continue;
    }

    // Contract 1+2: the survivor decodes and is old-A or new-B bytes.
    std::string Survivor;
    try {
      Survivor = readWholeFile(StPath);
      (void)serve::decodeStore(Survivor);
    } catch (const std::exception &E) {
      reportViolation(St, Seed, Schedule,
                      std::string("surviving store unusable: ") + E.what());
      continue;
    }
    if (Survivor != BytesA && Survivor != BytesB) {
      reportViolation(St, Seed, Schedule,
                      "surviving store is neither the old nor the new "
                      "snapshot (torn write?)");
      continue;
    }

    // Contract 3: recovery — warm-start the survivor, replay the edit if
    // the crash preserved A — coincides with the from-scratch solve.
    if (!ScratchOk)
      continue; // reference blew the budget; bytes contract still held
    try {
      serve::ServeEngine Rec(serve::ServeEngine::FromStore{StPath},
                             serveOptions());
      if (!Rec.solveInitial().Ok)
        continue;
      if (Survivor == BytesA) {
        serve::EditResult R = Rec.applyEdit(Edit->ProcName, Edit->Body);
        if (!R.Ok)
          continue;
      }
      bool Same = Rec.errorSites() == Scratch.errorSites() &&
                  Rec.programText() == Scratch.programText();
      for (SiteId S = 0; Same && S != Rec.program().numSites(); ++S)
        Same = Rec.verdict(S) == Scratch.verdict(S);
      if (!Same)
        reportViolation(St, Seed, Schedule,
                        "post-crash warm start diverges from the "
                        "from-scratch solve of the edited program");
    } catch (const std::exception &E) {
      reportViolation(St, Seed, Schedule,
                      std::string("post-crash warm start failed: ") +
                          E.what());
    }
  }
  ::unlink(StPath.c_str());
}

//===----------------------------------------------------------------------===//
// Journal campaign (WAL kill-mid-append / kill-mid-compaction)
//===----------------------------------------------------------------------===//

/// Reference state after an accepted-edit prefix: what any recovery that
/// lands on this prefix must reproduce exactly.
struct JournalPrefixState {
  std::string Text;
  std::set<SiteId> Errors;
  std::vector<TsVerdict> Verdicts;
  size_t JournalSize = 0; ///< Uninterrupted journal bytes at this prefix.
};

std::vector<TsVerdict> allVerdicts(const serve::ServeEngine &E) {
  std::vector<TsVerdict> V;
  V.reserve(E.program().numSites());
  for (SiteId S = 0; S != E.program().numSites(); ++S)
    V.push_back(E.verdict(S));
  return V;
}

JournalPrefixState snapshotPrefix(const serve::ServeEngine &E,
                                  size_t JournalSize) {
  JournalPrefixState P;
  P.Text = E.programText();
  P.Errors = E.errorSites();
  P.Verdicts = allVerdicts(E);
  P.JournalSize = JournalSize;
  return P;
}

/// One seed of the journal kill campaign. The parent dry-runs the whole
/// uninterrupted life of a journaled session — warm start, K accepted
/// edits, compaction — recording the store bytes before (A) and after
/// (B) compaction, the full journal bytes, and the reference state at
/// every accepted-edit prefix. Then each kill schedule crashes a child
/// redoing that life on fresh A + empty journal, and the parent asserts
/// the survivor-byte and recovery-coincidence contracts.
void runJournalSeed(uint64_t Seed, const ToolOptions &O, SeedStats &St) {
  std::string Text =
      programToText(*generateFuzzProgram(difftest::fuzzConfigForSeed(Seed)));
  std::string Base = O.OutDir + "/journal-seed" + std::to_string(Seed);
  std::string StPath = Base + ".swiftstore";
  std::string JPath = Base + ".swiftjournal";
  std::string DryStore = StPath + ".dry";
  std::string DryJournal = JPath + ".dry";
  auto CleanupDry = [&] {
    ::unlink(DryStore.c_str());
    ::unlink(DryJournal.c_str());
  };

  // Dry run: the uninterrupted byte trajectory and per-prefix references.
  serve::EngineOptions DEO = serveOptions();
  DEO.StorePath = DryStore;
  DEO.JournalPath = DryJournal;
  std::vector<JournalPrefixState> Ref;
  std::vector<serve::FuzzEdit> Edits;
  std::string BytesA, BytesB, FullJournal, FreshJournal;
  try {
    serve::ServeEngine Dry(Text, DEO);
    if (!Dry.solveInitial().Ok) {
      ++St.Completed; // blow-up under the tight caps: skip, don't fail
      CleanupDry();
      return;
    }
    Dry.resetJournal();
    BytesA = readWholeFile(DryStore);
    FreshJournal = readWholeFile(DryJournal);
    Ref.push_back(snapshotPrefix(Dry, FreshJournal.size()));
    // Up to 3 accepted edits from the first few candidates; rejected
    // candidates (budget under the tight caps) are transactional no-ops,
    // so the child's replay of the accepted list is deterministic.
    for (uint64_t K = 0; K != 6 && Edits.size() != 3; ++K) {
      std::optional<serve::FuzzEdit> FE =
          serve::makeFuzzEdit(Dry.programText(), Seed, K);
      if (!FE)
        break;
      if (!Dry.applyEdit(FE->ProcName, FE->Body).Ok)
        continue;
      Edits.push_back(*FE);
      Ref.push_back(snapshotPrefix(Dry, readWholeFile(DryJournal).size()));
    }
    if (Edits.empty()) {
      ++St.Completed; // nothing editable / nothing accepted
      CleanupDry();
      return;
    }
    FullJournal = readWholeFile(DryJournal);
    Dry.compact();
    BytesB = readWholeFile(DryStore);
  } catch (const std::exception &E) {
    reportViolation(St, Seed, "journal-dry",
                    std::string("uninterrupted journal run failed: ") +
                        E.what());
    CleanupDry();
    return;
  }
  CleanupDry();
  ++St.Tested;

  // The child's life fires serve.save twice: the warm-start auto-save
  // (store A's chunk count, known from the dry bytes) and compaction's
  // snapshot of B. nth() positions past the first save land inside the
  // second.
  const uint64_t ChunksA = (BytesA.size() + 511) / 512;
  const std::string Schedules[] = {
      // Mid-append: before the first record, inside record bytes, at the
      // fsync/close edges of the first and second append.
      "journal.append.open=nth(1)!kill",
      "journal.append.write=nth(1)!kill",
      "journal.append.write=nth(2)!kill",
      "journal.append.write=nth(3)!kill",
      "journal.append.flush=nth(1)!kill",
      "journal.append.flush=nth(2)!kill",
      "journal.append.close=nth(1)!kill",
      // Mid-warm-start auto-save (before any append).
      "serve.save.rename=nth(1)!kill",
      // Mid-compaction store snapshot.
      "serve.save.write=nth(" + std::to_string(ChunksA + 1) + ")!kill",
      "serve.save.flush=nth(2)!kill",
      "serve.save.rename=nth(2)!kill",
      // Mid-compaction journal reset.
      "journal.compact.write=nth(1)!kill",
      "journal.compact.rename=nth(1)!kill",
  };

  for (const std::string &Schedule : Schedules) {
    // Fresh baseline on disk: store A, empty (header-only) journal.
    writeFileAtomic(StPath, BytesA, "crashtest.scratch");
    writeFileAtomic(JPath, FreshJournal, "crashtest.scratch");

    pid_t Pid = ::fork();
    if (Pid < 0) {
      reportViolation(St, Seed, Schedule.c_str(), "fork failed");
      return;
    }
    if (Pid == 0) {
      try {
        failpoint::armSpec(Schedule);
        serve::EngineOptions EO = serveOptions();
        EO.StorePath = StPath;
        EO.JournalPath = JPath;
        serve::ServeEngine E(serve::ServeEngine::FromStore{StPath}, EO);
        if (!E.solveInitial().Ok)
          ::_exit(4);
        if (!E.replayJournal().Ok)
          ::_exit(4);
        for (const serve::FuzzEdit &FE : Edits)
          if (!E.applyEdit(FE.ProcName, FE.Body).Ok)
            ::_exit(4);
        E.compact();
      } catch (...) {
        ::_exit(3);
      }
      ::_exit(0);
    }

    int Status = 0;
    if (::waitpid(Pid, &Status, 0) != Pid || !WIFEXITED(Status)) {
      reportViolation(St, Seed, Schedule.c_str(),
                      "child did not exit normally (signal?)");
      continue;
    }
    int Code = WEXITSTATUS(Status);
    if (Code == failpoint::KillExitCode)
      ++St.KillsLanded;
    else if (Code == 0)
      ++St.ChildCompleted; // schedule beyond what this seed exercises
    else {
      reportViolation(St, Seed, Schedule.c_str(),
                      "child failed with exit " + std::to_string(Code));
      continue;
    }

    // Contract 1: the store survivor decodes and is old-A or new-B; the
    // journal survivor is a clean byte prefix of the uninterrupted
    // journal (O_APPEND never reorders, writeFileAtomic never tears, and
    // the fresh reset header is itself such a prefix).
    std::string SurvStore, SurvJournal;
    try {
      SurvStore = readWholeFile(StPath);
      (void)serve::decodeStore(SurvStore);
      SurvJournal = readWholeFile(JPath);
    } catch (const std::exception &E) {
      reportViolation(St, Seed, Schedule.c_str(),
                      std::string("survivor unusable: ") + E.what());
      continue;
    }
    if (SurvStore != BytesA && SurvStore != BytesB) {
      reportViolation(St, Seed, Schedule.c_str(),
                      "surviving store is neither the baseline nor the "
                      "compacted snapshot (torn write?)");
      continue;
    }
    if (SurvJournal.size() > FullJournal.size() ||
        FullJournal.compare(0, SurvJournal.size(), SurvJournal) != 0) {
      reportViolation(St, Seed, Schedule.c_str(),
                      "surviving journal is not a clean prefix of the "
                      "uninterrupted journal (torn or reordered write?)");
      continue;
    }

    // Which accepted-edit prefix did the crash preserve? With the
    // compacted store, all of them (replay onto it is idempotent);
    // otherwise the number of *complete* records in the journal
    // survivor, by the dry run's per-prefix byte boundaries.
    size_t N = 0;
    if (SurvStore == BytesB) {
      N = Edits.size();
    } else {
      while (N + 1 < Ref.size() &&
             Ref[N + 1].JournalSize <= SurvJournal.size())
        ++N;
    }

    // Contract 2: store + journal-tail recovery coincides with the
    // reference state over exactly that prefix.
    try {
      serve::EngineOptions REO = serveOptions();
      REO.StorePath = StPath;
      REO.JournalPath = JPath;
      serve::ServeEngine Rec(serve::ServeEngine::FromStore{StPath}, REO);
      if (!Rec.solveInitial().Ok) {
        reportViolation(St, Seed, Schedule.c_str(),
                        "recovery initial solve failed");
        continue;
      }
      serve::EditResult RR = Rec.replayJournal();
      if (!RR.Ok) {
        reportViolation(St, Seed, Schedule.c_str(),
                        "recovery journal replay failed: " + RR.Error);
        continue;
      }
      const JournalPrefixState &Want = Ref[N];
      if (Rec.programText() != Want.Text ||
          Rec.errorSites() != Want.Errors ||
          allVerdicts(Rec) != Want.Verdicts)
        reportViolation(St, Seed, Schedule.c_str(),
                        "recovery diverges from the reference over the "
                        "accepted-edit prefix (" + std::to_string(N) +
                            " of " + std::to_string(Edits.size()) +
                            " edits)");
    } catch (const std::exception &E) {
      reportViolation(St, Seed, Schedule.c_str(),
                      std::string("recovery failed: ") + E.what());
    }
  }
  ::unlink(StPath.c_str());
  ::unlink(JPath.c_str());
}

//===----------------------------------------------------------------------===//
// Worker-kill campaign (sharded multi-process analysis)
//===----------------------------------------------------------------------===//

/// Kill positions inside a worker: the writeFileAtomic edges of the
/// spool-segment save, and the middle of an SCC solve (before anything
/// of that SCC reached the spool). Only incarnation 0 is armed, so the
/// restarted worker runs clean and the coordinator must recover.
const char *const ShardKillSchedules[] = {
    "spool.save.open=nth(1)!kill",  "spool.save.write=nth(1)!kill",
    "spool.save.write=nth(2)!kill", "spool.save.flush=nth(1)!kill",
    "spool.save.close=nth(1)!kill", "spool.save.rename=nth(1)!kill",
    "worker.scc.solve=nth(1)!kill", "worker.scc.solve=nth(2)!kill"};

std::string defaultWorkerBin() {
  char Buf[4096];
  ssize_t N = ::readlink("/proc/self/exe", Buf, sizeof(Buf) - 1);
  if (N <= 0)
    return "swift-shard-worker";
  Buf[N] = '\0';
  std::string Self(Buf);
  size_t Slash = Self.rfind('/');
  if (Slash == std::string::npos)
    return "swift-shard-worker";
  return Self.substr(0, Slash + 1) + "swift-shard-worker";
}

/// Reads every complete segment file ("seg-<scc>.spool") in \p Dir.
/// In-flight temp files (*.spool.tmp.<pid>) left by killed writers are
/// invisible to segment loads and deliberately excluded here too.
std::map<std::string, std::string> readSpoolSegments(const std::string &Dir) {
  std::map<std::string, std::string> Out;
  std::error_code EC;
  for (const std::filesystem::directory_entry &E :
       std::filesystem::directory_iterator(Dir, EC)) {
    std::string Name = E.path().filename().string();
    constexpr std::string_view Suffix = ".spool";
    if (Name.size() <= Suffix.size() ||
        std::string_view(Name).substr(Name.size() - Suffix.size()) != Suffix)
      continue;
    Out[Name] = readWholeFile(E.path().string());
  }
  return Out;
}

/// One seed of the worker-kill campaign: reference run on a clean spool,
/// then every kill schedule on a fresh spool, then the every-incarnation
/// kill that must drain the restart budget into the governed fallback.
void runShardSeed(uint64_t Seed, const ToolOptions &O, SeedStats &St) {
  namespace fs = std::filesystem;
  std::string Text =
      programToText(*generateFuzzProgram(difftest::fuzzConfigForSeed(Seed)));
  std::string Base = O.OutDir + "/shard-seed" + std::to_string(Seed);
  std::error_code EC;
  fs::remove_all(Base, EC);
  fs::create_directories(Base + "/ref", EC);
  std::string ProgPath = Base + "/prog.swiftir";
  writeFileAtomic(ProgPath, Text, "crashtest.scratch");

  shard::CoordinatorOptions CO;
  CO.ProgramPath = ProgPath;
  CO.WorkerBin = O.WorkerBin;
  CO.NumShards = 2;
  CO.MaxWorkers = 2;
  CO.SpoolDir = Base + "/ref";
  // Blow-ups under this cap are resource facts: the seed is skipped, the
  // same policy the serve campaign applies.
  CO.WorkerMaxSteps = 2'000'000;
  CO.FallbackMaxSteps = 10'000'000;
  CO.RestartBudget = 5;
  CO.BackoffBaseMs = 1; // keep the campaign fast; correctness is timing-free
  CO.HeartbeatTimeoutMs = 0; // exit status is the only liveness signal here

  shard::ShardRunReport Ref;
  try {
    Ref = shard::runCoordinator(CO);
  } catch (const std::exception &E) {
    reportViolation(St, Seed, "shard-ref",
                    std::string("reference coordinator run failed: ") +
                        E.what());
    return;
  }
  if (!Ref.Complete) {
    ++St.Completed; // budget exhaustion: skip, don't fail
    fs::remove_all(Base, EC);
    return;
  }
  // The uninterrupted run's segments: the only bytes a survivor may hold.
  std::map<std::string, std::string> RefSegs =
      readSpoolSegments(Base + "/ref");
  if (RefSegs.empty()) {
    reportViolation(St, Seed, "shard-ref",
                    "reference run published no spool segments");
    fs::remove_all(Base, EC);
    return;
  }
  ++St.Tested;

  std::string RunDir = Base + "/run";
  auto FreshRunDir = [&] {
    fs::remove_all(RunDir, EC);
    fs::create_directories(RunDir, EC);
  };

  for (const char *Schedule : ShardKillSchedules) {
    FreshRunDir();
    CO.SpoolDir = RunDir;
    CO.WorkerFailpoints = Schedule;
    CO.FailpointsAllIncarnations = false;
    shard::ShardRunReport R;
    try {
      R = shard::runCoordinator(CO);
    } catch (const std::exception &E) {
      reportViolation(St, Seed, Schedule,
                      std::string("coordinator run failed: ") + E.what());
      continue;
    }
    // Every restart is a landed kill (only incarnation 0 is armed, and
    // nothing else crashes workers here).
    St.KillsLanded += R.Restarts;
    if (R.Restarts == 0)
      ++St.ChildCompleted; // schedule beyond what this program exercises

    // Contract 1: every surviving segment decodes cleanly and is
    // byte-for-byte a segment the uninterrupted run wrote.
    for (const auto &[Name, Bytes] : readSpoolSegments(RunDir)) {
      try {
        (void)shard::decodeSegment(Bytes);
      } catch (const std::exception &E) {
        reportViolation(St, Seed, Schedule,
                        "surviving segment " + Name +
                            " unusable: " + E.what());
        continue;
      }
      auto It = RefSegs.find(Name);
      if (It == RefSegs.end())
        reportViolation(St, Seed, Schedule,
                        "surviving segment " + Name +
                            " has no counterpart in the uninterrupted run");
      else if (It->second != Bytes)
        reportViolation(St, Seed, Schedule,
                        "surviving segment " + Name +
                            " differs from the uninterrupted run's bytes "
                            "(torn write?)");
    }

    // Contract 2: the recovered run coincides with the uninterrupted one.
    if (R.FallbackPartial) {
      reportViolation(St, Seed, Schedule,
                      "recovered run ended with partial verdicts");
      continue;
    }
    if (R.ErrorSites != Ref.ErrorSites || R.Verdicts != Ref.Verdicts)
      reportViolation(St, Seed, Schedule,
                      "recovered run diverges from the uninterrupted run");
  }

  // Contract 3: kill every incarnation mid-solve so the restart budget
  // drains and the shard permanently fails — the governed fallback must
  // still produce sound verdicts (exact when it completes, a sound
  // subset when it does not).
  const char *AlwaysKill = "worker.scc.solve=always!kill";
  FreshRunDir();
  CO.SpoolDir = RunDir;
  CO.WorkerFailpoints = AlwaysKill;
  CO.FailpointsAllIncarnations = true;
  CO.RestartBudget = 1;
  try {
    shard::ShardRunReport R = shard::runCoordinator(CO);
    St.KillsLanded += R.Restarts + static_cast<uint64_t>(!R.Complete);
    if (!R.UsedFallback) {
      reportViolation(St, Seed, AlwaysKill,
                      "every-incarnation kills did not force the fallback");
    } else if (R.FallbackPartial) {
      // Sound subset: no error site or error verdict the reference lacks,
      // and no Proved claim for a site the reference reports.
      bool Unsound = false;
      for (SiteId S : R.ErrorSites)
        Unsound |= !Ref.ErrorSites.count(S);
      for (uint32_t S = 0; S != R.Verdicts.size(); ++S) {
        if (R.Verdicts[S] == TsVerdict::ErrorReported)
          Unsound |= !Ref.ErrorSites.count(S);
        if (R.Verdicts[S] == TsVerdict::Proved)
          Unsound |= Ref.ErrorSites.count(S) != 0;
      }
      if (Unsound)
        reportViolation(St, Seed, AlwaysKill,
                        "partial fallback verdicts are unsound against "
                        "the uninterrupted run");
    } else if (R.ErrorSites != Ref.ErrorSites || R.Verdicts != Ref.Verdicts) {
      reportViolation(St, Seed, AlwaysKill,
                      "fallback verdicts diverge from the uninterrupted "
                      "run");
    }
  } catch (const std::exception &E) {
    reportViolation(St, Seed, AlwaysKill,
                    std::string("coordinator run failed: ") + E.what());
  }
  fs::remove_all(Base, EC);
}

} // namespace

int main(int Argc, char **Argv) {
  ToolOptions O;
  std::string Err;
  if (!parseArgs(Argc, Argv, O, Err)) {
    std::fprintf(stderr, "swift-crashtest: %s\n%s", Err.c_str(),
                 usageText());
    return 2;
  }
  if (O.ShowHelp) {
    std::fputs(usageText(), stdout);
    return 0;
  }

  std::error_code EC;
  std::filesystem::create_directories(O.OutDir, EC);
  if (EC) {
    std::fprintf(stderr, "swift-crashtest: cannot create '%s': %s\n",
                 O.OutDir.c_str(), EC.message().c_str());
    return 2;
  }

  if (O.WorkerBin.empty())
    O.WorkerBin = defaultWorkerBin();
  if (::access(O.WorkerBin.c_str(), X_OK) != 0) {
    std::fprintf(stderr,
                 "swift-crashtest: worker binary '%s' is not executable "
                 "(build swift-shard-worker or pass --worker-bin=)\n",
                 O.WorkerBin.c_str());
    return 2;
  }

  SeedStats St;
  for (uint64_t Seed = O.FirstSeed; Seed != O.FirstSeed + O.Seeds; ++Seed)
    runSeed(Seed, O, St);

  SeedStats Sv;
  for (uint64_t Seed = O.FirstSeed; Seed != O.FirstSeed + O.Seeds; ++Seed)
    runServeSeed(Seed, O, Sv);

  SeedStats Sh;
  for (uint64_t Seed = O.FirstSeed; Seed != O.FirstSeed + O.Seeds; ++Seed)
    runShardSeed(Seed, O, Sh);

  SeedStats Jn;
  for (uint64_t Seed = O.FirstSeed; Seed != O.FirstSeed + O.Seeds; ++Seed)
    runJournalSeed(Seed, O, Jn);

  std::printf("%llu seed(s): %llu crash-tested, %llu completed under the "
              "budget; %llu kill(s) landed, %llu child save(s) ran to "
              "completion; %llu violation(s)\n",
              static_cast<unsigned long long>(St.Tested + St.Completed),
              static_cast<unsigned long long>(St.Tested),
              static_cast<unsigned long long>(St.Completed),
              static_cast<unsigned long long>(St.KillsLanded),
              static_cast<unsigned long long>(St.ChildCompleted),
              static_cast<unsigned long long>(St.Violations));
  std::printf("serve store: %llu seed(s) crash-tested, %llu skipped; "
              "%llu kill(s) landed, %llu child save(s) ran to completion; "
              "%llu violation(s)\n",
              static_cast<unsigned long long>(Sv.Tested),
              static_cast<unsigned long long>(Sv.Completed),
              static_cast<unsigned long long>(Sv.KillsLanded),
              static_cast<unsigned long long>(Sv.ChildCompleted),
              static_cast<unsigned long long>(Sv.Violations));
  std::printf("shard workers: %llu seed(s) crash-tested, %llu skipped; "
              "%llu worker kill(s) landed, %llu schedule(s) never fired; "
              "%llu violation(s)\n",
              static_cast<unsigned long long>(Sh.Tested),
              static_cast<unsigned long long>(Sh.Completed),
              static_cast<unsigned long long>(Sh.KillsLanded),
              static_cast<unsigned long long>(Sh.ChildCompleted),
              static_cast<unsigned long long>(Sh.Violations));
  std::printf("serve journal: %llu seed(s) crash-tested, %llu skipped; "
              "%llu kill(s) landed, %llu child run(s) ran to completion; "
              "%llu violation(s)\n",
              static_cast<unsigned long long>(Jn.Tested),
              static_cast<unsigned long long>(Jn.Completed),
              static_cast<unsigned long long>(Jn.KillsLanded),
              static_cast<unsigned long long>(Jn.ChildCompleted),
              static_cast<unsigned long long>(Jn.Violations));

  if (!O.JsonOut.empty()) {
    auto Campaign = [](const char *Name, const SeedStats &S) {
      auto U = [](uint64_t V) { return std::to_string(V); };
      return std::string("{\"name\":\"") + Name +
             "\",\"seeds_tested\":" + U(S.Tested) +
             ",\"seeds_skipped\":" + U(S.Completed) +
             ",\"kills_landed\":" + U(S.KillsLanded) +
             ",\"child_completed\":" + U(S.ChildCompleted) +
             ",\"violations\":" + U(S.Violations) + "}";
    };
    std::string Json =
        "{\"format\":\"swift-crashtest\",\"version\":1,\"campaigns\":[" +
        Campaign("checkpoint", St) + "," + Campaign("serve-store", Sv) +
        "," + Campaign("shard-workers", Sh) + "," +
        Campaign("serve-journal", Jn) + "]}\n";
    try {
      writeFileAtomic(O.JsonOut, Json, "crashtest.scratch");
    } catch (const std::exception &E) {
      std::fprintf(stderr, "swift-crashtest: cannot write '%s': %s\n",
                   O.JsonOut.c_str(), E.what());
      return 2;
    }
  }

  if (St.Violations || Sv.Violations || Sh.Violations || Jn.Violations)
    return 1;
  if ((St.Tested && !St.KillsLanded) || (Sv.Tested && !Sv.KillsLanded) ||
      (Sh.Tested && !Sh.KillsLanded) || (Jn.Tested && !Jn.KillsLanded))
    // The harness must actually provoke crashes to certify anything.
    std::printf("warning: no kill schedule landed; raise --steps so "
                "checkpoints span more write chunks\n");
  return 0;
}
