# Empty dependencies file for swift_ir.
# This may be replaced when dependencies are built.
