file(REMOVE_RECURSE
  "CMakeFiles/swift_ir.dir/CallGraph.cpp.o"
  "CMakeFiles/swift_ir.dir/CallGraph.cpp.o.d"
  "CMakeFiles/swift_ir.dir/Dumper.cpp.o"
  "CMakeFiles/swift_ir.dir/Dumper.cpp.o.d"
  "CMakeFiles/swift_ir.dir/ModRef.cpp.o"
  "CMakeFiles/swift_ir.dir/ModRef.cpp.o.d"
  "CMakeFiles/swift_ir.dir/Program.cpp.o"
  "CMakeFiles/swift_ir.dir/Program.cpp.o.d"
  "CMakeFiles/swift_ir.dir/ProgramBuilder.cpp.o"
  "CMakeFiles/swift_ir.dir/ProgramBuilder.cpp.o.d"
  "libswift_ir.a"
  "libswift_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swift_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
