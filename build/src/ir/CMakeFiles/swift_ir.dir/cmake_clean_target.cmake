file(REMOVE_RECURSE
  "libswift_ir.a"
)
