# Empty dependencies file for swift_simple.
# This may be replaced when dependencies are built.
