file(REMOVE_RECURSE
  "libswift_simple.a"
)
