file(REMOVE_RECURSE
  "CMakeFiles/swift_simple.dir/SimpleDomain.cpp.o"
  "CMakeFiles/swift_simple.dir/SimpleDomain.cpp.o.d"
  "libswift_simple.a"
  "libswift_simple.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swift_simple.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
