file(REMOVE_RECURSE
  "CMakeFiles/swift_genprog.dir/Fuzzer.cpp.o"
  "CMakeFiles/swift_genprog.dir/Fuzzer.cpp.o.d"
  "CMakeFiles/swift_genprog.dir/GenSink.cpp.o"
  "CMakeFiles/swift_genprog.dir/GenSink.cpp.o.d"
  "CMakeFiles/swift_genprog.dir/Generator.cpp.o"
  "CMakeFiles/swift_genprog.dir/Generator.cpp.o.d"
  "CMakeFiles/swift_genprog.dir/Workloads.cpp.o"
  "CMakeFiles/swift_genprog.dir/Workloads.cpp.o.d"
  "libswift_genprog.a"
  "libswift_genprog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swift_genprog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
