
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/genprog/Fuzzer.cpp" "src/genprog/CMakeFiles/swift_genprog.dir/Fuzzer.cpp.o" "gcc" "src/genprog/CMakeFiles/swift_genprog.dir/Fuzzer.cpp.o.d"
  "/root/repo/src/genprog/GenSink.cpp" "src/genprog/CMakeFiles/swift_genprog.dir/GenSink.cpp.o" "gcc" "src/genprog/CMakeFiles/swift_genprog.dir/GenSink.cpp.o.d"
  "/root/repo/src/genprog/Generator.cpp" "src/genprog/CMakeFiles/swift_genprog.dir/Generator.cpp.o" "gcc" "src/genprog/CMakeFiles/swift_genprog.dir/Generator.cpp.o.d"
  "/root/repo/src/genprog/Workloads.cpp" "src/genprog/CMakeFiles/swift_genprog.dir/Workloads.cpp.o" "gcc" "src/genprog/CMakeFiles/swift_genprog.dir/Workloads.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ir/CMakeFiles/swift_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/swift_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
