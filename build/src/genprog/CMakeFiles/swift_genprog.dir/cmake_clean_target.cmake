file(REMOVE_RECURSE
  "libswift_genprog.a"
)
