# Empty dependencies file for swift_genprog.
# This may be replaced when dependencies are built.
