file(REMOVE_RECURSE
  "CMakeFiles/swift_typestate.dir/AbstractState.cpp.o"
  "CMakeFiles/swift_typestate.dir/AbstractState.cpp.o.d"
  "CMakeFiles/swift_typestate.dir/CallMapping.cpp.o"
  "CMakeFiles/swift_typestate.dir/CallMapping.cpp.o.d"
  "CMakeFiles/swift_typestate.dir/Predicate.cpp.o"
  "CMakeFiles/swift_typestate.dir/Predicate.cpp.o.d"
  "CMakeFiles/swift_typestate.dir/RelCall.cpp.o"
  "CMakeFiles/swift_typestate.dir/RelCall.cpp.o.d"
  "CMakeFiles/swift_typestate.dir/Relation.cpp.o"
  "CMakeFiles/swift_typestate.dir/Relation.cpp.o.d"
  "CMakeFiles/swift_typestate.dir/Runner.cpp.o"
  "CMakeFiles/swift_typestate.dir/Runner.cpp.o.d"
  "CMakeFiles/swift_typestate.dir/Transfer.cpp.o"
  "CMakeFiles/swift_typestate.dir/Transfer.cpp.o.d"
  "libswift_typestate.a"
  "libswift_typestate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swift_typestate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
