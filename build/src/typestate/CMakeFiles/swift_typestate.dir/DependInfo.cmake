
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/typestate/AbstractState.cpp" "src/typestate/CMakeFiles/swift_typestate.dir/AbstractState.cpp.o" "gcc" "src/typestate/CMakeFiles/swift_typestate.dir/AbstractState.cpp.o.d"
  "/root/repo/src/typestate/CallMapping.cpp" "src/typestate/CMakeFiles/swift_typestate.dir/CallMapping.cpp.o" "gcc" "src/typestate/CMakeFiles/swift_typestate.dir/CallMapping.cpp.o.d"
  "/root/repo/src/typestate/Predicate.cpp" "src/typestate/CMakeFiles/swift_typestate.dir/Predicate.cpp.o" "gcc" "src/typestate/CMakeFiles/swift_typestate.dir/Predicate.cpp.o.d"
  "/root/repo/src/typestate/RelCall.cpp" "src/typestate/CMakeFiles/swift_typestate.dir/RelCall.cpp.o" "gcc" "src/typestate/CMakeFiles/swift_typestate.dir/RelCall.cpp.o.d"
  "/root/repo/src/typestate/Relation.cpp" "src/typestate/CMakeFiles/swift_typestate.dir/Relation.cpp.o" "gcc" "src/typestate/CMakeFiles/swift_typestate.dir/Relation.cpp.o.d"
  "/root/repo/src/typestate/Runner.cpp" "src/typestate/CMakeFiles/swift_typestate.dir/Runner.cpp.o" "gcc" "src/typestate/CMakeFiles/swift_typestate.dir/Runner.cpp.o.d"
  "/root/repo/src/typestate/Transfer.cpp" "src/typestate/CMakeFiles/swift_typestate.dir/Transfer.cpp.o" "gcc" "src/typestate/CMakeFiles/swift_typestate.dir/Transfer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/alias/CMakeFiles/swift_alias.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/swift_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/swift_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
