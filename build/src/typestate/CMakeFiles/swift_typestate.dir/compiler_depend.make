# Empty compiler generated dependencies file for swift_typestate.
# This may be replaced when dependencies are built.
