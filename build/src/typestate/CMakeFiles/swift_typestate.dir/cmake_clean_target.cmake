file(REMOVE_RECURSE
  "libswift_typestate.a"
)
