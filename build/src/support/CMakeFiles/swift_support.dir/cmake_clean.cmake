file(REMOVE_RECURSE
  "CMakeFiles/swift_support.dir/Stats.cpp.o"
  "CMakeFiles/swift_support.dir/Stats.cpp.o.d"
  "CMakeFiles/swift_support.dir/Timer.cpp.o"
  "CMakeFiles/swift_support.dir/Timer.cpp.o.d"
  "libswift_support.a"
  "libswift_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swift_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
