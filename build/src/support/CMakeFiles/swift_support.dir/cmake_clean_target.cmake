file(REMOVE_RECURSE
  "libswift_support.a"
)
