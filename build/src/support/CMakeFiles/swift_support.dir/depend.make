# Empty dependencies file for swift_support.
# This may be replaced when dependencies are built.
