file(REMOVE_RECURSE
  "CMakeFiles/swift_lang.dir/Lexer.cpp.o"
  "CMakeFiles/swift_lang.dir/Lexer.cpp.o.d"
  "CMakeFiles/swift_lang.dir/Lower.cpp.o"
  "CMakeFiles/swift_lang.dir/Lower.cpp.o.d"
  "CMakeFiles/swift_lang.dir/Parser.cpp.o"
  "CMakeFiles/swift_lang.dir/Parser.cpp.o.d"
  "libswift_lang.a"
  "libswift_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swift_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
