file(REMOVE_RECURSE
  "libswift_lang.a"
)
