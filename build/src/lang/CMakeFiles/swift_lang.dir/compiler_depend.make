# Empty compiler generated dependencies file for swift_lang.
# This may be replaced when dependencies are built.
