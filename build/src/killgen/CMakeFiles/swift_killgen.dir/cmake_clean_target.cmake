file(REMOVE_RECURSE
  "libswift_killgen.a"
)
