# Empty dependencies file for swift_killgen.
# This may be replaced when dependencies are built.
