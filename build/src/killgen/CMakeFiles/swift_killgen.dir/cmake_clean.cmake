file(REMOVE_RECURSE
  "CMakeFiles/swift_killgen.dir/KgDomain.cpp.o"
  "CMakeFiles/swift_killgen.dir/KgDomain.cpp.o.d"
  "CMakeFiles/swift_killgen.dir/KgRunner.cpp.o"
  "CMakeFiles/swift_killgen.dir/KgRunner.cpp.o.d"
  "libswift_killgen.a"
  "libswift_killgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swift_killgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
