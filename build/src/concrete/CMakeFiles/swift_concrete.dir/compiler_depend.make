# Empty compiler generated dependencies file for swift_concrete.
# This may be replaced when dependencies are built.
