file(REMOVE_RECURSE
  "libswift_concrete.a"
)
