file(REMOVE_RECURSE
  "CMakeFiles/swift_concrete.dir/Interpreter.cpp.o"
  "CMakeFiles/swift_concrete.dir/Interpreter.cpp.o.d"
  "libswift_concrete.a"
  "libswift_concrete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swift_concrete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
