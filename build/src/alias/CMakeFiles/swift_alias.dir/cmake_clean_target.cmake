file(REMOVE_RECURSE
  "libswift_alias.a"
)
