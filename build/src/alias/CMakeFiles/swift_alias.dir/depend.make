# Empty dependencies file for swift_alias.
# This may be replaced when dependencies are built.
