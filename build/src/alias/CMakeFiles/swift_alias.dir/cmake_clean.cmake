file(REMOVE_RECURSE
  "CMakeFiles/swift_alias.dir/AliasAnalysis.cpp.o"
  "CMakeFiles/swift_alias.dir/AliasAnalysis.cpp.o.d"
  "libswift_alias.a"
  "libswift_alias.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swift_alias.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
