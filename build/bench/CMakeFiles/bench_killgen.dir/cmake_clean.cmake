file(REMOVE_RECURSE
  "CMakeFiles/bench_killgen.dir/bench_killgen.cpp.o"
  "CMakeFiles/bench_killgen.dir/bench_killgen.cpp.o.d"
  "bench_killgen"
  "bench_killgen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_killgen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
