# Empty compiler generated dependencies file for bench_killgen.
# This may be replaced when dependencies are built.
