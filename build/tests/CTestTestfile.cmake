# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/paper_example_test[1]_include.cmake")
include("/root/repo/build/tests/coincidence_test[1]_include.cmake")
include("/root/repo/build/tests/soundness_test[1]_include.cmake")
include("/root/repo/build/tests/killgen_test[1]_include.cmake")
include("/root/repo/build/tests/conditions_test[1]_include.cmake")
include("/root/repo/build/tests/ir_test[1]_include.cmake")
include("/root/repo/build/tests/lang_test[1]_include.cmake")
include("/root/repo/build/tests/alias_test[1]_include.cmake")
include("/root/repo/build/tests/domain_test[1]_include.cmake")
include("/root/repo/build/tests/callmapping_test[1]_include.cmake")
include("/root/repo/build/tests/interp_test[1]_include.cmake")
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/generator_test[1]_include.cmake")
include("/root/repo/build/tests/framework_test[1]_include.cmake")
include("/root/repo/build/tests/simple_formalism_test[1]_include.cmake")
