# Empty dependencies file for coincidence_test.
# This may be replaced when dependencies are built.
