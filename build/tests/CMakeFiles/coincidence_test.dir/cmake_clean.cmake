file(REMOVE_RECURSE
  "CMakeFiles/coincidence_test.dir/coincidence_test.cpp.o"
  "CMakeFiles/coincidence_test.dir/coincidence_test.cpp.o.d"
  "coincidence_test"
  "coincidence_test.pdb"
  "coincidence_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/coincidence_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
