file(REMOVE_RECURSE
  "CMakeFiles/killgen_test.dir/killgen_test.cpp.o"
  "CMakeFiles/killgen_test.dir/killgen_test.cpp.o.d"
  "killgen_test"
  "killgen_test.pdb"
  "killgen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/killgen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
