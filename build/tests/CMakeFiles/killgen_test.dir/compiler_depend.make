# Empty compiler generated dependencies file for killgen_test.
# This may be replaced when dependencies are built.
