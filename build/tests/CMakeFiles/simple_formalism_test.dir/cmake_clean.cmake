file(REMOVE_RECURSE
  "CMakeFiles/simple_formalism_test.dir/simple_formalism_test.cpp.o"
  "CMakeFiles/simple_formalism_test.dir/simple_formalism_test.cpp.o.d"
  "simple_formalism_test"
  "simple_formalism_test.pdb"
  "simple_formalism_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/simple_formalism_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
