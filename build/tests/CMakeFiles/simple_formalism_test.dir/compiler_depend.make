# Empty compiler generated dependencies file for simple_formalism_test.
# This may be replaced when dependencies are built.
