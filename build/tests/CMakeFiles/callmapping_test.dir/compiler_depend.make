# Empty compiler generated dependencies file for callmapping_test.
# This may be replaced when dependencies are built.
