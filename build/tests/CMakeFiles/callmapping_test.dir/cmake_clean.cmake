file(REMOVE_RECURSE
  "CMakeFiles/callmapping_test.dir/callmapping_test.cpp.o"
  "CMakeFiles/callmapping_test.dir/callmapping_test.cpp.o.d"
  "callmapping_test"
  "callmapping_test.pdb"
  "callmapping_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/callmapping_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
