# Empty compiler generated dependencies file for file_checker.
# This may be replaced when dependencies are built.
