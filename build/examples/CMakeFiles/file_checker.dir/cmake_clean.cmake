file(REMOVE_RECURSE
  "CMakeFiles/file_checker.dir/file_checker.cpp.o"
  "CMakeFiles/file_checker.dir/file_checker.cpp.o.d"
  "file_checker"
  "file_checker.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/file_checker.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
