file(REMOVE_RECURSE
  "CMakeFiles/taint_audit.dir/taint_audit.cpp.o"
  "CMakeFiles/taint_audit.dir/taint_audit.cpp.o.d"
  "taint_audit"
  "taint_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/taint_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
