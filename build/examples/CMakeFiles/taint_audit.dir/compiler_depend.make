# Empty compiler generated dependencies file for taint_audit.
# This may be replaced when dependencies are built.
