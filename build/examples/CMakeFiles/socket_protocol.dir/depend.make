# Empty dependencies file for socket_protocol.
# This may be replaced when dependencies are built.
