file(REMOVE_RECURSE
  "CMakeFiles/socket_protocol.dir/socket_protocol.cpp.o"
  "CMakeFiles/socket_protocol.dir/socket_protocol.cpp.o.d"
  "socket_protocol"
  "socket_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/socket_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
