# Empty compiler generated dependencies file for iterator_invalidation.
# This may be replaced when dependencies are built.
