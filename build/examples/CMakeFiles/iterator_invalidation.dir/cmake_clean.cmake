file(REMOVE_RECURSE
  "CMakeFiles/iterator_invalidation.dir/iterator_invalidation.cpp.o"
  "CMakeFiles/iterator_invalidation.dir/iterator_invalidation.cpp.o.d"
  "iterator_invalidation"
  "iterator_invalidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/iterator_invalidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
